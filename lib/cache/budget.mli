(** The budgeted shared result-cache manager.

    Hanson's analysis lets every cached procedure result stay materialized
    forever; this module adds the missing resource constraint: one global
    page budget shared by every stored result (Cache and Invalidate stores
    and AVM materialized views alike).  Owners register an entry per
    stored result and ask for {e admission} before writing pages; the
    manager evicts other entries (per the configured {!Policy}) until the
    request fits, or refuses when it can never fit — in which case the
    owner must fall back to a plain recompute (Always-Recompute pricing,
    no write-back).

    Accounting: an eviction charges one page write through the manager's
    cost bundle (the cache-directory update that persists the decision —
    the stores themselves are write-through, so their pages need no
    flush).  Readmission I/O is charged by the owner when it rewrites the
    evicted store ([C_ProcessQuery + 2 C2 ProcSize], the paper's miss
    cost), which is exactly why a zero budget degrades CI/AVM to
    Always-Recompute costs: nothing is ever admitted, so nothing is ever
    written back or invalidated.

    The structural invariant — resident pages never exceed the budget —
    holds after every operation; {!max_used_pages} exposes the high-water
    mark so tests can assert it.  All state advances on a logical clock
    (no wall time, no randomness), keeping runs deterministic and
    byte-identical under domain-parallel execution.

    Observability ([cache.*] counters and gauges in
    {!Dbproc_obs.Metrics}): admissions, evictions, evicted pages,
    readmissions and fallback recomputes, plus budget/resident-page
    gauges. *)

type t

type entry_id

val create :
  ?policy:Policy.t -> ?budget_pages:int -> io:Dbproc_storage.Io.t -> unit -> t
(** A manager charging through [io]'s cost bundle.  [policy] defaults to
    {!Policy.Lru}; [budget_pages] is the global page budget — omitting it
    means unlimited (every admission succeeds and nothing is ever
    evicted).  [budget_pages] must be [>= 0]; [0] means nothing is ever
    resident. *)

val register :
  t -> name:string -> on_evict:(unit -> unit) -> unit -> entry_id
(** Register an entry (initially non-resident, zero pages).  [on_evict]
    runs whenever the entry loses residency — the owner drops its stored
    copy there (e.g. {!Dbproc_proc.Result_cache.drop}); it must not call
    back into the manager. *)

val resident : t -> entry_id -> bool

val note_access : t -> entry_id -> unit
(** Record one logical access: advances the clock, refreshes the entry's
    recency and access count.  Call on every access, hit or miss, so both
    policies see the true access rate. *)

val note_recompute_cost : t -> entry_id -> float -> unit
(** Update the entry's observed recompute cost (any consistent unit; the
    manager only compares scores).  Owners report the charged cost of
    each actual recompute; until the first report the registration
    estimate is the entry's page count. *)

val try_admit : t -> entry_id -> pages:int -> bool
(** Request residency for [pages] pages.  Returns [false] — and evicts a
    resident entry, if any — when [pages] alone exceeds the budget; the
    owner must answer the access with a plain recompute and no
    write-back.  Otherwise evicts victims (never the entry itself) per
    the policy until the request fits, marks the entry resident at
    [pages], and returns [true].  Admitting an already-resident entry
    just resizes it. *)

val resize : t -> entry_id -> pages:int -> unit
(** The owner's stored copy changed size (maintenance or refresh).  A
    no-op for non-resident entries.  Growth may evict victims; if the
    entry alone no longer fits the budget it is itself evicted. *)

val release : t -> entry_id -> unit
(** Voluntarily give up residency (strategy migration, recovery).
    Charged and counted like an eviction; no-op if not resident. *)

val unregister : t -> entry_id -> unit
(** {!release} and forget the entry entirely. *)

val policy : t -> Policy.t
val budget_pages : t -> int option
val used_pages : t -> int
val max_used_pages : t -> int
(** High-water mark of {!used_pages} — tests assert it never exceeds the
    budget. *)

val evictions : t -> int
val resident_entries : t -> int
