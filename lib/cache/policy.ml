type t = Lru | Cost_aware

let all = [ Lru; Cost_aware ]
let name = function Lru -> "lru" | Cost_aware -> "cost-aware"

let of_string s =
  match String.lowercase_ascii s with
  | "lru" -> Some Lru
  | "cost-aware" | "cost_aware" | "costaware" -> Some Cost_aware
  | _ -> None
