(** "Who wins where" classification over the parameter space — the paper's
    Figures 12-15 and 19. *)

type winner_class = AR | CI | UC | HO
(** The paper's region figures compare three algorithm classes, with UC
    represented by its cheaper variant.  [HO] marks where our
    higher-order maintainer beats all four paper strategies; it only
    appears in the extended classifications, never the paper ones. *)

val winner_class_char : winner_class -> char
(** 'R', 'C', 'U', 'H' — the marks used in region maps. *)

val best : Model.which -> Params.t -> Strategy.t
(** Cheapest of all five strategies (ties broken in {!Strategy.all}
    order). *)

val paper_strategies : Strategy.t list
(** {!Strategy.all} minus HOIVM — the four the paper analyzes. *)

val best_paper : Model.which -> Params.t -> Strategy.t
(** Cheapest of the paper's four strategies (HOIVM excluded). *)

val best_class : Model.which -> Params.t -> winner_class
(** Paper classification: never returns [HO]. *)

val best_class_extended : Model.which -> Params.t -> winner_class
(** [best_class], except [HO] when HOIVM undercuts every paper
    strategy. *)

val best_update_cache : Model.which -> Params.t -> Strategy.t
(** The cheaper Update Cache variant (AVM or RVM). *)

val ci_within_factor : Model.which -> Params.t -> factor:float -> bool
(** Whether Cache and Invalidate costs at most [factor] times the best
    Update Cache variant — the paper's "closeness" maps (Figures 14/15). *)

val classify_at : Model.which -> Params.t -> f:float -> p:float -> winner_class
(** {!best_class} with the object size and update probability overridden
    — one cell of a region map. *)

val classify_at_extended : Model.which -> Params.t -> f:float -> p:float -> winner_class
(** {!best_class_extended} at an overridden (f, P) — one cell of the
    extended (five-strategy) region map. *)
