(** The paper's closed-form cost model: expected cost (ms) per procedure
    access for each strategy, in both procedure models.

    Model 1: P1 procedures are single-relation selections on R1, P2
    procedures are 2-way joins (R1 ⋈ R2).  Model 2: P2 procedures are
    3-way joins (R1 ⋈ R2 ⋈ R3).  Formulas follow Sections 4 and 6 of the
    paper verbatim (including the printed per-term I/O factors; see
    EXPERIMENTS.md for the two places the paper's text and tables
    disagree and which reading we use). *)

type which = Model1 | Model2

val which_name : which -> string

val cost : which -> Params.t -> Strategy.t -> float
(** Expected total cost per procedure access, the quantity plotted on the
    y-axis of every figure. *)

val per_procedure :
  which -> Params.t -> p_hat:float -> f_hat:float -> p2:bool -> Strategy.t -> float
(** {!cost} specialized to a single procedure with online-estimated
    statistics — what the adaptive selector in
    [Dbproc_proc.Manager] evaluates at each decision window.  [p_hat] is
    the observed update probability (clamped to [\[0, 0.99\]]), [f_hat]
    the observed result selectivity (result cardinality / N; for a P2
    procedure this is f·f2 and the model divides f2 back out), [p2]
    whether the procedure joins a second relation.  The rest of [Params.t]
    (page geometry, unit costs, locality) is taken as given. *)

val breakdown : which -> Params.t -> Strategy.t -> (string * float) list
(** Named cost components summing to {!cost} (query-time terms are listed
    as-is; per-update terms are already scaled by k/q). *)

(** {2 Individual totals} (conveniences over {!cost}) *)

val tot_recompute : which -> Params.t -> float
val tot_cache_inval : which -> Params.t -> float
val tot_update_cache_avm : which -> Params.t -> float
val tot_update_cache_rvm : which -> Params.t -> float
val tot_update_cache_hoivm : which -> Params.t -> float

(** {2 Intermediate quantities} (exposed for tests against hand-computed
    values) *)

val flush_pages : m:float -> k:float -> float
(** Expected store pages touched by one coalesced HOIVM flush:
    m·(1 − e^(−k/m)) with [m] floored at one page — the Poissonized form
    of the Yao draw, because the per-window delta count [k] is an
    expectation over independent interval hits, not a deterministic draw
    size.  Agrees with Yao for k ≪ 1 and saturates at the store's page
    count for k ≫ m. *)

val c_query_p1 : Params.t -> float
val c_query_p2 : which -> Params.t -> float
val c_process_query : which -> Params.t -> float
val invalidation_probability : Params.t -> float
(** IP: the probability a cached value is invalid when accessed, under the
    hot/cold locality model. *)

val false_invalidation_probability : Params.t -> float
(** 1 − f2: probability that an invalidation of a P2 procedure was
    unnecessary (Section 5). *)
