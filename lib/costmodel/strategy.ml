type t =
  | Always_recompute
  | Cache_invalidate
  | Update_cache_avm
  | Update_cache_rvm
  | Update_cache_hoivm

let all =
  [ Always_recompute; Cache_invalidate; Update_cache_avm; Update_cache_rvm;
    Update_cache_hoivm ]

let name = function
  | Always_recompute -> "always-recompute"
  | Cache_invalidate -> "cache-and-invalidate"
  | Update_cache_avm -> "update-cache (AVM)"
  | Update_cache_rvm -> "update-cache (RVM)"
  | Update_cache_hoivm -> "update-cache (HOIVM)"

let short_name = function
  | Always_recompute -> "AR"
  | Cache_invalidate -> "CI"
  | Update_cache_avm -> "AVM"
  | Update_cache_rvm -> "RVM"
  | Update_cache_hoivm -> "HOIVM"

(* The one name<->variant table: every surface that parses a strategy name
   (the language's [set strategy], procsim flags, bench --strategies
   filters) goes through [of_string], so accepted spellings stay in one
   place. *)
let of_string s =
  match String.lowercase_ascii s with
  | "ar" | "always-recompute" | "recompute" -> Some Always_recompute
  | "ci" | "cache-and-invalidate" | "cache-invalidate" | "caching" -> Some Cache_invalidate
  | "avm" | "update-cache-avm" -> Some Update_cache_avm
  | "rvm" | "update-cache-rvm" -> Some Update_cache_rvm
  | "hoivm" | "update-cache-hoivm" -> Some Update_cache_hoivm
  | _ -> None

let pp ppf t = Format.pp_print_string ppf (name t)
