type output =
  | Series of {
      x_label : string;
      y_label : string;
      columns : string list;
      rows : (float * float list) list;
    }
  | Region of { x_label : string; y_label : string; rendered : string; legend : string }
  | Table of { header : string list; rows : string list list }

type t = {
  id : string;
  title : string;
  expectation : string;
  params : Params.t;
  model : Model.which;
  output : unit -> output;
}

let p_sweep = List.init 20 (fun i -> float_of_int i *. 0.05)
let sf_sweep = List.init 21 (fun i -> float_of_int i *. 0.05)

(* The curve/region reproductions stay faithful to the paper's four
   strategies; HOIVM appears only in the ext-* figures. *)
let strategies = Regions.paper_strategies
let strategy_columns = List.map Strategy.short_name strategies

let cost_vs_p model params =
  let rows =
    List.map
      (fun p ->
        let params = Params.with_update_probability params p in
        (p, List.map (Model.cost model params) strategies))
      p_sweep
  in
  Series
    { x_label = "P (update probability)"; y_label = "cost/query (ms)"; columns = strategy_columns; rows }

let cost_vs_sf model params =
  let rows =
    List.map
      (fun sf ->
        let params = { params with Params.sf } in
        ( sf,
          [
            Model.cost model params Strategy.Update_cache_avm;
            Model.cost model params Strategy.Update_cache_rvm;
          ] ))
      sf_sweep
  in
  Series
    { x_label = "SF (sharing factor)"; y_label = "cost/query (ms)"; columns = [ "AVM"; "RVM" ]; rows }

let crossover_sf model params =
  let grid = List.init 1001 (fun i -> float_of_int i /. 1000.0) in
  List.find_opt
    (fun sf ->
      let params = { params with Params.sf } in
      Model.cost model params Strategy.Update_cache_rvm
      <= Model.cost model params Strategy.Update_cache_avm)
    grid

let f_range = (1e-5, 0.03)
let p_range = (0.0, 0.95)

let region_winners model params =
  let rendered =
    Dbproc_util.Ascii_chart.region_map ~x_label:"f (object size)" ~y_label:"P" ~x_range:f_range
      ~y_range:p_range ~log_x:true
      ~classify:(fun ~x ~y ->
        Regions.winner_class_char (Regions.classify_at model params ~f:x ~p:y))
      ()
  in
  Region
    {
      x_label = "f";
      y_label = "P";
      rendered;
      legend = "R = always-recompute, C = cache-and-invalidate, U = update-cache (best variant)";
    }

let region_winners_extended model params =
  let rendered =
    Dbproc_util.Ascii_chart.region_map ~x_label:"f (object size)" ~y_label:"P" ~x_range:f_range
      ~y_range:p_range ~log_x:true
      ~classify:(fun ~x ~y ->
        Regions.winner_class_char (Regions.classify_at_extended model params ~f:x ~p:y))
      ()
  in
  Region
    {
      x_label = "f";
      y_label = "P";
      rendered;
      legend =
        "R = always-recompute, C = cache-and-invalidate, U = update-cache (best paper \
         variant), H = update-cache (HOIVM) beats all four";
    }

let region_closeness model params ~factor =
  let rendered =
    Dbproc_util.Ascii_chart.region_map ~x_label:"f (object size)" ~y_label:"P" ~x_range:f_range
      ~y_range:p_range ~log_x:true
      ~classify:(fun ~x ~y ->
        let params = Params.with_update_probability { params with Params.f = x } y in
        if Regions.ci_within_factor model params ~factor then '#' else '.')
      ()
  in
  Region
    {
      x_label = "f";
      y_label = "P";
      rendered;
      legend = Printf.sprintf "# = cache-and-invalidate within %gx of best update-cache" factor;
    }

let d = Params.default

let fig id ~title ~expectation ?(params = d) ?(model = Model.Model1) output =
  { id; title; expectation; params; model; output = (fun () -> output ~model ~params) }

let all =
  [
    {
      id = "tab-params";
      title = "Figure 2: cost-model parameters and defaults";
      expectation = "Matches the parameter table of the paper.";
      params = d;
      model = Model.Model1;
      output =
        (fun () ->
          Table
            {
              header = [ "parameter"; "value" ];
              rows = List.map (fun (k, v) -> [ k; v ]) (Params.to_rows d);
            });
    };
    {
      id = "tab-access-methods";
      title = "Access methods of the base relations";
      expectation = "R1: B-tree primary on the selection attribute; R2, R3: hashed primary.";
      params = d;
      model = Model.Model1;
      output =
        (fun () ->
          Table
            {
              header = [ "relation"; "access method" ];
              rows =
                [
                  [ "R1"; "B-tree primary index on the C_f(R1) selection attribute" ];
                  [ "R2"; "hashed primary index on attribute a" ];
                  [ "R3"; "hashed primary index on attribute c" ];
                ];
            });
    };
    fig "fig4" ~title:"Query cost vs update probability, high invalidation cost (C_inval = 60 ms)"
      ~expectation:
        "CI is far above both UC variants for moderate P: per-update invalidation I/O dominates."
      ~params:{ d with Params.c_inval = 60.0 }
      (fun ~model ~params -> cost_vs_p model params);
    fig "fig5" ~title:"Query cost vs update probability, low invalidation cost (C_inval = 0)"
      ~expectation:
        "CI and UC equal at P=0; CI noticeably above UC for 0<P<0.7 (false invalidations, \
         full recompute on miss); CI plateaus slightly above AR for P>0.6; UC explodes as P->1."
      (fun ~model ~params -> cost_vs_p model params);
    fig "fig6" ~title:"Query cost vs update probability, large objects (f = 0.01)"
      ~expectation:"UC clearly beats CI at low P: incremental update of a large object is cheap."
      ~params:{ d with Params.f = 0.01 }
      (fun ~model ~params -> cost_vs_p model params);
    fig "fig7" ~title:"Query cost vs update probability, small objects (f = 0.0001)"
      ~expectation:
        "CI is competitive with UC everywhere; at P=0.1 CI ~5x and UC ~7x better than AR; \
         CI does not degrade at high P."
      ~params:{ d with Params.f = 0.0001 }
      (fun ~model ~params -> cost_vs_p model params);
    fig "fig8" ~title:"Query cost vs update probability, single-tuple objects (N1=100, N2=0, f=1/N)"
      ~expectation:"CI essentially equals UC except UC degrades at large P."
      ~params:{ d with Params.n1 = 100.0; n2 = 0.0; f = 1.0 /. d.Params.n }
      (fun ~model ~params -> cost_vs_p model params);
    fig "fig9" ~title:"Query cost vs update probability, high locality (Z = 0.05)"
      ~expectation:"CI benefits from locality (hot objects are usually still valid); UC does not."
      ~params:{ d with Params.z = 0.05 }
      (fun ~model ~params -> cost_vs_p model params);
    fig "fig10" ~title:"Query cost vs update probability, many objects (N1 = N2 = 1000)"
      ~expectation:"UC cost rises much faster with P than in fig5; CI plateau moves left."
      ~params:{ d with Params.n1 = 1000.0; n2 = 1000.0 }
      (fun ~model ~params -> cost_vs_p model params);
    fig "fig11" ~title:"Model 1: AVM vs RVM vs sharing factor"
      ~expectation:
        "RVM approaches AVM only as SF -> 1 (alpha-memory refresh cancels sharing gains for \
         2-way joins)."
      (fun ~model ~params -> cost_vs_sf model params);
    fig "fig12" ~title:"Model 1: winner regions over (f, P)"
      ~expectation:
        "AR wins at high P; UC wins at low P; UC's winning P-range narrows as f grows; CI \
         region negligible."
      (fun ~model ~params -> region_winners model params);
    fig "fig13" ~title:"Model 1: winner regions, high locality (Z = 0.05)"
      ~expectation:"CI gains a region for small objects (f < ~0.002)."
      ~params:{ d with Params.z = 0.05 }
      (fun ~model ~params -> region_winners model params);
    fig "fig14" ~title:"Model 1: region where CI is within 2x of UC"
      ~expectation:"CI close to UC at high P everywhere, and at low P for small objects."
      (fun ~model ~params -> region_closeness model params ~factor:2.0);
    fig "fig15" ~title:"Model 1: CI within 2x of UC, no false invalidation (f2 = 1)"
      ~expectation:"CI's close region grows for small objects."
      ~params:{ d with Params.f2 = 1.0 }
      (fun ~model ~params -> region_closeness model params ~factor:2.0);
    fig "fig17" ~title:"Model 2: query cost vs update probability (defaults)"
      ~expectation:"Same shape as fig5; RVM now below AVM at the default SF = 0.5."
      ~model:Model.Model2
      (fun ~model ~params -> cost_vs_p model params);
    fig "fig18" ~title:"Model 2: AVM vs RVM vs sharing factor"
      ~expectation:"Equal cost at SF ~ 0.47; RVM superior above."
      ~model:Model.Model2
      (fun ~model ~params -> cost_vs_sf model params);
    fig "fig19" ~title:"Model 2: winner regions over (f, P)"
      ~expectation:"Like fig12 but the best UC variant is RVM."
      ~model:Model.Model2
      (fun ~model ~params -> region_winners model params);
    fig "ext-hoivm-region" ~title:"Extended: winner regions over (f, P) with HOIVM as a fifth strategy"
      ~expectation:
        "Not in the paper.  HOIVM carves an H region out of the UC band at moderate update \
         probability: its delta application is CPU-priced (in-memory alpha hashes) and its \
         store writes are deferred to read time, where one coalesced flush replaces AVM's \
         per-update page I/O."
      (fun ~model ~params -> region_winners_extended model params);
  ]

let find id = List.find_opt (fun f -> f.id = id) all

let render t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "== %s: %s [%s]\n" t.id t.title (Model.which_name t.model));
  Buffer.add_string buf (Printf.sprintf "paper: %s\n\n" t.expectation);
  (match t.output () with
  | Table { header; rows } ->
    let table = Dbproc_util.Ascii_table.create ~aligns:[ Dbproc_util.Ascii_table.Left ] ~header () in
    List.iter (Dbproc_util.Ascii_table.add_row table) rows;
    Buffer.add_string buf (Dbproc_util.Ascii_table.render table)
  | Series { x_label; y_label; columns; rows } ->
    let table =
      Dbproc_util.Ascii_table.create ~header:(x_label :: columns) ()
    in
    List.iter
      (fun (x, ys) ->
        Dbproc_util.Ascii_table.add_float_row ~decimals:2 table (Printf.sprintf "%.3f" x) ys)
      rows;
    Buffer.add_string buf (Dbproc_util.Ascii_table.render table);
    Buffer.add_char buf '\n';
    let series =
      List.mapi (fun i name -> (name, List.map (fun (x, ys) -> (x, List.nth ys i)) rows)) columns
    in
    Buffer.add_string buf
      (Dbproc_util.Ascii_chart.line_plot ~log_y:true ~x_label ~y_label ~series ())
  | Region { rendered; legend; _ } ->
    Buffer.add_string buf rendered;
    Buffer.add_char buf '\n';
    Buffer.add_string buf legend;
    Buffer.add_char buf '\n');
  Buffer.contents buf
