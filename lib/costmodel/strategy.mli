(** The four query-processing strategies the paper compares, plus the
    higher-order IVM extension ({!Update_cache_hoivm}). *)

type t =
  | Always_recompute
  | Cache_invalidate
  | Update_cache_avm  (** Update Cache via non-shared algebraic maintenance *)
  | Update_cache_rvm  (** Update Cache via shared Rete maintenance *)
  | Update_cache_hoivm
      (** Update Cache via recursive higher-order deltas with heavy-light
          partitioning (DBToaster-style; not in the paper) *)

val all : t list
val name : t -> string
val short_name : t -> string
(** Two/three/five-letter tags: AR, CI, AVM, RVM, HOIVM. *)

val of_string : string -> t option
(** The shared name↔variant table: [ar]/[ci]/[avm]/[rvm]/[hoivm] plus the
    long spellings, case-insensitive.  Every strategy-name parse site
    (language, CLI flags, bench args) routes through here. *)

val pp : Format.formatter -> t -> unit
