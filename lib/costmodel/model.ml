type which = Model1 | Model2

let which_name = function Model1 -> "model 1" | Model2 -> "model 2"

open Params

let yao = Dbproc_util.Yao.paper

(* --- Query (recompute) costs ------------------------------------------- *)

let c_query_p1 (p : t) =
  (p.c1 *. p.f *. p.n)
  +. (p.c2 *. Float.ceil (p.f *. blocks p))
  +. (p.c2 *. btree_height p)

(* Pages of R2 touched joining the f·N selected R1 tuples (Y1). *)
let y1 (p : t) = yao ~n:(p.f_r2 *. p.n) ~m:(p.f_r2 *. blocks p) ~k:(p.f *. p.n)

(* Pages of R3 touched extending the join to R3 in model 2 (Y6). *)
let y6 (p : t) = yao ~n:(p.f_r3 *. p.n) ~m:(p.f_r3 *. blocks p) ~k:(p.f *. p.n)

let c_query_p2_m1 (p : t) = c_query_p1 p +. (p.c1 *. p.f *. p.n) +. (p.c2 *. y1 p)

let c_query_p2 which (p : t) =
  match which with
  | Model1 -> c_query_p2_m1 p
  | Model2 -> c_query_p2_m1 p +. (p.c2 *. y6 p) +. (p.c1 *. p.f *. p.n)

let c_process_query which (p : t) =
  ((p.n1 *. c_query_p1 p) +. (p.n2 *. c_query_p2 which p)) /. total_procs p

(* --- Cache and Invalidate ---------------------------------------------- *)

let c_read (p : t) = p.c2 *. proc_size_pages p
let c_write_cache (p : t) = 2.0 *. p.c2 *. proc_size_pages p

(* Probability that one update transaction invalidates a given procedure:
   2l old/new tuple values, each breaking an i-lock with probability f. *)
let p_inval (p : t) = 1.0 -. ((1.0 -. p.f) ** (2.0 *. p.l))

let invalidation_probability (p : t) =
  if p.k <= 0.0 then 0.0
  else begin
    let nobj = total_procs p in
    let upq = updates_per_query p in
    let invalid_after x = 1.0 -. ((1.0 -. p.f) ** (x *. 2.0 *. p.l)) in
    let x_hot = nobj *. (p.z /. (1.0 -. p.z)) *. upq in
    let y_cold = nobj *. ((1.0 -. p.z) /. p.z) *. upq in
    let z1 = invalid_after x_hot in
    let z2 = invalid_after y_cold in
    ((1.0 -. p.z) *. z1) +. (p.z *. z2)
  end

let false_invalidation_probability (p : t) = 1.0 -. p.f2

let t3 (p : t) = updates_per_query p *. total_procs p *. p_inval p *. p.c_inval

let cache_inval_terms which (p : t) =
  let ip = invalidation_probability p in
  let t1 = c_process_query which p +. c_write_cache p in
  let t2 = c_read p in
  [
    ("IP * T1 (miss: recompute + write back)", ip *. t1);
    ("(1-IP) * T2 (hit: read cache)", (1.0 -. ip) *. t2);
    ("T3 (invalidation recording)", t3 p);
  ]

(* --- Update Cache: shared Yao quantities -------------------------------- *)

(* Pages of R2 read joining the 2fl surviving delta tuples (Y2). *)
let y2 (p : t) = yao ~n:(p.f_r2 *. p.n) ~m:(p.f_r2 *. blocks p) ~k:(2.0 *. p.f *. p.l)

(* Pages of a P1 procedure value touched by one update (Y3). *)
let y3 (p : t) = yao ~n:(p.f *. p.n) ~m:(p.f *. blocks p) ~k:(2.0 *. p.f *. p.l)

(* Pages of a P2 procedure value touched by one update (Y4). *)
let y4 (p : t) =
  let fs = f_star p in
  yao ~n:(fs *. p.n) ~m:(fs *. blocks p) ~k:(2.0 *. fs *. p.l)

(* Pages of the right α-memory (σ_f2 R2, f** = f2·f_R2) probed per update (Y5). *)
let y5 (p : t) =
  let fss = p.f2 *. p.f_r2 in
  yao ~n:(fss *. p.n) ~m:(fss *. blocks p) ~k:(2.0 *. p.f *. p.l)

(* Pages of R3 read extending delta joins in model 2 (Y7). *)
let y7 (p : t) = yao ~n:(p.f_r3 *. p.n) ~m:(p.f_r3 *. blocks p) ~k:(2.0 *. p.f *. p.l)

(* Pages of the (σ_f2 R2 ⋈ R3) β-memory (f*** = f2·f_R3) probed per update (Y8). *)
let y8 (p : t) =
  let fsss = p.f2 *. p.f_r3 in
  yao ~n:(fsss *. p.n) ~m:(fsss *. blocks p) ~k:(2.0 *. p.f *. p.l)

(* --- Update Cache, non-shared (AVM) ------------------------------------ *)

let avm_update_terms which (p : t) =
  let c_screen_p1 = p.n1 *. p.c1 *. p.f *. p.l in
  let c_screen_p2 = p.n2 *. p.c1 *. p.f *. p.l in
  let c_refresh_p1 = p.n1 *. p.c2 *. y3 p in
  let c_refresh_p2 = p.n2 *. p.c2 *. y4 p in
  let c_overhead = p.c3 *. 2.0 *. p.f *. p.l *. total_procs p in
  let c_join =
    match which with
    | Model1 -> p.n2 *. p.c2 *. y2 p
    | Model2 -> p.n2 *. p.c2 *. (y2 p +. y7 p)
  in
  [
    ("screen P1", c_screen_p1);
    ("screen P2", c_screen_p2);
    ("refresh P1", c_refresh_p1);
    ("refresh P2", c_refresh_p2);
    ("A/D set overhead", c_overhead);
    ("join delta", c_join);
  ]

(* --- Update Cache, shared (RVM) ----------------------------------------- *)

let rvm_update_terms which (p : t) =
  let c_screen_p1 = p.n1 *. p.c1 *. p.f *. p.l in
  let c_screen_p2_rete = p.n2 *. (1.0 -. p.sf) *. p.c1 *. p.f *. p.l in
  let c_refresh_p1 = p.n1 *. p.c2 *. y3 p in
  let c_refresh_alpha = p.n2 *. (1.0 -. p.sf) *. 2.0 *. p.c2 *. y3 p in
  let c_refresh_p2 = p.n2 *. p.c2 *. y4 p in
  let c_join_mem =
    match which with
    | Model1 -> p.n2 *. p.c2 *. y5 p (* probe right α-memory *)
    | Model2 -> p.n2 *. p.c2 *. y8 p (* probe right β-memory *)
  in
  [
    ("screen P1", c_screen_p1);
    ("screen P2 (unshared)", c_screen_p2_rete);
    ("refresh P1", c_refresh_p1);
    ("refresh left alpha (unshared)", c_refresh_alpha);
    ("refresh P2", c_refresh_p2);
    ("probe right memory", c_join_mem);
  ]

(* --- Update Cache, higher-order (HOIVM) --------------------------------- *)

(* Per-update work is purely in-memory: screens as for AVM, A_net/D_net
   bookkeeping, and C1 hash probes (one per surviving delta tuple and per
   joined tuple emitted) against the materialized prefix views — where
   AVM pays charged page probes (Y2/Y7) per update, HOIVM pays C1. *)
let hoivm_update_terms which (p : t) =
  let c_screen_p1 = p.n1 *. p.c1 *. p.f *. p.l in
  let c_screen_p2 = p.n2 *. p.c1 *. p.f *. p.l in
  let c_overhead = p.c3 *. 2.0 *. p.f *. p.l *. total_procs p in
  let chains = match which with Model1 -> 1.0 | Model2 -> 2.0 in
  let c_propagate = p.n2 *. p.c1 *. 2.0 *. (2.0 *. p.f *. p.l) *. chains in
  [
    ("screen P1", c_screen_p1);
    ("screen P2", c_screen_p2);
    ("A/D set overhead", c_overhead);
    ("propagate delta (in-memory)", c_propagate);
  ]

(* Store pages are touched only when the procedure is read: every update
   since its previous read has folded a net view-level delta into the
   pending maps, and the read applies them in one batch.  That is a
   single Yao draw over the whole accumulation window — [window]
   procedures share the query stream, so k/q * window updates coalesce —
   instead of AVM's separate Y3/Y4 draw per update.  The draw saturates
   at the stored object's page count, which is exactly the higher-order
   win at high update probability.

   The delta count per window is an expectation, not a deterministic
   draw size (updates hit a given procedure's interval as independent
   trials), so the touched-page count uses the Poissonized form
   m·(1 - e^(-k/m)) instead of Yao at integer k: at an expected one
   delta per window the flush fires with probability 1 - 1/e, it is not
   a certainty.  The two forms agree for k << 1 (both ≈ k) and at
   saturation (both → m). *)
let flush_pages ~m ~k =
  if k <= 0.0 then 0.0
  else begin
    let m1 = Float.max 1.0 m in
    m1 *. (1.0 -. exp (-.k /. m1))
  end

let hoivm_read_terms ?window which (p : t) =
  let window = Float.max 1.0 (Option.value window ~default:(total_procs p)) in
  let u1 = updates_per_query p *. window *. 2.0 *. p.f *. p.l in
  let flush_p1 = 2.0 *. p.c2 *. flush_pages ~m:(p.f *. blocks p) ~k:u1 in
  let fs = f_star p in
  let u2 = updates_per_query p *. window *. 2.0 *. fs *. p.l in
  let flush_top = 2.0 *. p.c2 *. flush_pages ~m:(fs *. blocks p) ~k:u2 in
  let flush_p2 =
    match which with
    | Model1 -> flush_p1 +. flush_top
    | Model2 -> flush_p1 +. (2.0 *. flush_top) (* extra join-prefix store *)
  in
  [
    ("C_read", c_read p);
    ( "flush pending (one coalesced batch)",
      ((p.n1 *. flush_p1) +. (p.n2 *. flush_p2)) /. total_procs p );
  ]

(* --- Totals -------------------------------------------------------------- *)

let sum = List.fold_left (fun acc (_, v) -> acc +. v) 0.0

let breakdown which (p : t) strategy =
  match (strategy : Strategy.t) with
  | Strategy.Always_recompute -> [ ("C_ProcessQuery", c_process_query which p) ]
  | Strategy.Cache_invalidate -> cache_inval_terms which p
  | Strategy.Update_cache_avm ->
    ("C_read", c_read p)
    :: List.map
         (fun (name, v) -> ("(k/q) " ^ name, updates_per_query p *. v))
         (avm_update_terms which p)
  | Strategy.Update_cache_rvm ->
    ("C_read", c_read p)
    :: List.map
         (fun (name, v) -> ("(k/q) " ^ name, updates_per_query p *. v))
         (rvm_update_terms which p)
  | Strategy.Update_cache_hoivm ->
    hoivm_read_terms which p
    @ List.map
        (fun (name, v) -> ("(k/q) " ^ name, updates_per_query p *. v))
        (hoivm_update_terms which p)

let cost which p strategy = sum (breakdown which p strategy)

(* Per-procedure cost at observed statistics: the population collapses to
   the single procedure (N1=1 or N2=1), its update probability and result
   selectivity are replaced by the online estimates, and the closed form
   is evaluated as usual.  For a P2 procedure the observed result
   selectivity is f* = f·f2, so f is recovered by dividing out f2. *)
let per_procedure which (p : t) ~p_hat ~f_hat ~p2 strategy =
  let p_hat = Float.max 0.0 (Float.min p_hat 0.99) in
  (* Floor the observed selectivity at half a tuple: a currently-empty
     result does not mean a permanently-empty one (updates move tuples
     into the interval), and pricing it as exactly empty makes every
     cached strategy collapse to an identical hit cost — the selector
     would then break the tie arbitrarily instead of by how each
     strategy degrades when the first tuple arrives. *)
  let f_hat = Float.max f_hat (0.5 /. Float.max 1.0 p.n) in
  let f_hat = Float.max 1e-9 (Float.min f_hat 1.0) in
  let f =
    if p2 && p.f2 > 0.0 then Float.min 1.0 (f_hat /. p.f2) else f_hat
  in
  let base =
    if p2 then { p with f; n1 = 0.0; n2 = 1.0 } else { p with f; n1 = 1.0; n2 = 0.0 }
  in
  let priced = with_update_probability base p_hat in
  match strategy with
  | Strategy.Update_cache_hoivm ->
    (* The flush window depends on the real population (a procedure is
       read once per total_procs queries), which the single-procedure
       collapse would otherwise erase.  The collapse convention prices
       access-side work per this procedure's read but update-side work
       per query (AVM's maintenance term is k/q x one procedure's
       refresh); the coalesced flush is update-side work that happens to
       be paid at read time, so its per-query contribution divides by
       the window — otherwise HOIVM is overpriced by a factor of the
       population size against AVM's per-query maintenance. *)
    let window = Float.max 1.0 (total_procs p) in
    let read_terms = hoivm_read_terms ~window which priced in
    let flush =
      sum (List.filter (fun (name, _) -> name <> "C_read") read_terms)
    in
    c_read priced +. (flush /. window)
    +. (updates_per_query priced *. sum (hoivm_update_terms which priced))
  | Strategy.Update_cache_avm | Strategy.Update_cache_rvm ->
    (* The paper's closed form counts one page touch per refreshed store
       page (C2·Y3/Y4); the engine this selector controls pays a
       read-modify-write, i.e. two.  Figure reproductions keep the
       paper's form; the migration decision prices the second touch so
       differential maintenance is not half-priced against HOIVM's
       flush, which already charges both I/Os. *)
    let writeback =
      p.c2
      *. ((priced.n1 *. y3 priced) +. (priced.n2 *. y4 priced))
      /. total_procs priced
    in
    cost which priced strategy +. (updates_per_query priced *. writeback)
  | _ -> cost which priced strategy

let tot_recompute which p = cost which p Strategy.Always_recompute
let tot_cache_inval which p = cost which p Strategy.Cache_invalidate
let tot_update_cache_avm which p = cost which p Strategy.Update_cache_avm
let tot_update_cache_rvm which p = cost which p Strategy.Update_cache_rvm
let tot_update_cache_hoivm which p = cost which p Strategy.Update_cache_hoivm
let c_query_p2 = c_query_p2
let c_process_query = c_process_query
