type winner_class = AR | CI | UC | HO

let winner_class_char = function AR -> 'R' | CI -> 'C' | UC -> 'U' | HO -> 'H'

(* The paper's strategies only; HOIVM is ours, kept out of the Figure
   12-15 reproductions. *)
let paper_strategies =
  List.filter (fun s -> s <> Strategy.Update_cache_hoivm) Strategy.all

let best which params =
  let costs = List.map (fun s -> (s, Model.cost which params s)) Strategy.all in
  fst
    (List.fold_left
       (fun (bs, bc) (s, c) -> if c < bc then (s, c) else (bs, bc))
       (List.hd costs) (List.tl costs))

let best_update_cache which params =
  if
    Model.cost which params Strategy.Update_cache_avm
    <= Model.cost which params Strategy.Update_cache_rvm
  then Strategy.Update_cache_avm
  else Strategy.Update_cache_rvm

let best_paper which params =
  let costs = List.map (fun s -> (s, Model.cost which params s)) paper_strategies in
  fst
    (List.fold_left
       (fun (bs, bc) (s, c) -> if c < bc then (s, c) else (bs, bc))
       (List.hd costs) (List.tl costs))

let best_class which params =
  let ar = Model.cost which params Strategy.Always_recompute in
  let ci = Model.cost which params Strategy.Cache_invalidate in
  let uc = Model.cost which params (best_update_cache which params) in
  if ar <= ci && ar <= uc then AR else if ci <= ar && ci <= uc then CI else UC

let best_class_extended which params =
  let ho = Model.cost which params Strategy.Update_cache_hoivm in
  let paper = Model.cost which params (best_paper which params) in
  if ho < paper then HO else best_class which params

let ci_within_factor which params ~factor =
  let ci = Model.cost which params Strategy.Cache_invalidate in
  let uc = Model.cost which params (best_update_cache which params) in
  ci <= factor *. uc

let classify_at which params ~f ~p =
  best_class which (Params.with_update_probability { params with f } p)

let classify_at_extended which params ~f ~p =
  best_class_extended which (Params.with_update_probability { params with f } p)
