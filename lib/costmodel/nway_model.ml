open Params

let yao = Dbproc_util.Yao.paper

(* Tuples flowing into probe stage i (2-based; stage i probes relation
   C_i): the base selection passes f·N, the C2 stage filters by f2. *)
let stage_inflow (p : t) i = if i = 2 then p.f *. p.n else p.f *. p.f2 *. p.n

(* Expected cost to recompute one chain procedure of length m. *)
let c_query_chain (p : t) m =
  let base = Model.c_query_p1 p in
  let rec stages i acc =
    if i > m then acc
    else begin
      let inflow = stage_inflow p i in
      let pages = yao ~n:(p.f_r2 *. p.n) ~m:(p.f_r2 *. blocks p) ~k:inflow in
      stages (i + 1) (acc +. (p.c1 *. inflow) +. (p.c2 *. pages))
    end
  in
  stages 2 base

let chain_proc_size (p : t) m =
  if m = 1 then Float.ceil (p.f *. blocks p)
  else Float.ceil (f_star p *. blocks p)

let mixed_proc_size (p : t) m =
  ((p.n1 *. Float.ceil (p.f *. blocks p)) +. (p.n2 *. chain_proc_size p m)) /. total_procs p

let c_process_query (p : t) m =
  ((p.n1 *. Model.c_query_p1 p) +. (p.n2 *. c_query_chain p m)) /. total_procs p

(* delta tuples flowing into maintenance stage i after an update of l
   tuples on C1 (2l old/new values, f-surviving) *)
let delta_inflow (p : t) i =
  if i = 2 then 2.0 *. p.f *. p.l else 2.0 *. p.f *. p.f2 *. p.l

let avm_update (p : t) m =
  let screens = total_procs p *. p.c1 *. p.f *. p.l in
  let y3 = yao ~n:(p.f *. p.n) ~m:(p.f *. blocks p) ~k:(2.0 *. p.f *. p.l) in
  let refresh_p1 = p.n1 *. p.c2 *. y3 in
  let fs = f_star p in
  let y4 = yao ~n:(fs *. p.n) ~m:(fs *. blocks p) ~k:(2.0 *. fs *. p.l) in
  let refresh_chain = p.n2 *. p.c2 *. y4 in
  let overhead = p.c3 *. 2.0 *. p.f *. p.l *. total_procs p in
  let rec joins i acc =
    if i > m then acc
    else begin
      let pages = yao ~n:(p.f_r2 *. p.n) ~m:(p.f_r2 *. blocks p) ~k:(delta_inflow p i) in
      joins (i + 1) (acc +. (p.n2 *. p.c2 *. pages))
    end
  in
  screens +. refresh_p1 +. refresh_chain +. overhead +. joins 2 0.0

let rvm_update (p : t) _m =
  let screens_p1 = p.n1 *. p.c1 *. p.f *. p.l in
  let screens_chain = p.n2 *. (1.0 -. p.sf) *. p.c1 *. p.f *. p.l in
  let y3 = yao ~n:(p.f *. p.n) ~m:(p.f *. blocks p) ~k:(2.0 *. p.f *. p.l) in
  let refresh_p1 = p.n1 *. p.c2 *. y3 in
  let refresh_alpha = p.n2 *. (1.0 -. p.sf) *. 2.0 *. p.c2 *. y3 in
  let fs = f_star p in
  let y4 = yao ~n:(fs *. p.n) ~m:(fs *. blocks p) ~k:(2.0 *. fs *. p.l) in
  let refresh_chain = p.n2 *. p.c2 *. y4 in
  (* one probe into the precomputed spine: for m = 2 the right alpha
     (f2·f_R2 tuples), for m >= 3 the beta spine (f2·f_R2 tuples too — one
     expected match per chain hop keeps the spine's cardinality at its
     sigma(C2) input) *)
  let spine_fraction = p.f2 *. p.f_r2 in
  let y_spine =
    yao ~n:(spine_fraction *. p.n) ~m:(spine_fraction *. blocks p) ~k:(2.0 *. p.f *. p.l)
  in
  let join_spine = p.n2 *. p.c2 *. y_spine in
  screens_p1 +. screens_chain +. refresh_p1 +. refresh_alpha +. refresh_chain +. join_spine

(* Higher-order maintenance of a length-m chain: screens and A/D
   bookkeeping as for AVM, then one C1 hash probe (plus one C1 per tuple
   emitted) per chain hop instead of a charged page draw per hop — the
   prefix views absorb the join work in memory, and store pages wait for
   the read-time flush ({!hoivm_flush}). *)
let hoivm_update (p : t) m =
  let screens = total_procs p *. p.c1 *. p.f *. p.l in
  let overhead = p.c3 *. 2.0 *. p.f *. p.l *. total_procs p in
  let rec hops i acc =
    if i > m then acc
    else hops (i + 1) (acc +. (p.n2 *. p.c1 *. 2.0 *. delta_inflow p i))
  in
  screens +. overhead +. hops 2 0.0

(* One coalesced batch per read over the whole accumulation window: the
   P1 store plus every chain-prefix store, each one Poissonized page
   draw ({!Model.flush_pages} — the per-window delta count is an
   expectation, not a deterministic draw size). *)
let hoivm_flush (p : t) m =
  let window = Float.max 1.0 (total_procs p) in
  let u1 = updates_per_query p *. window *. 2.0 *. p.f *. p.l in
  let flush_p1 = 2.0 *. p.c2 *. Model.flush_pages ~m:(p.f *. blocks p) ~k:u1 in
  let fs = f_star p in
  let u2 = updates_per_query p *. window *. 2.0 *. fs *. p.l in
  let flush_prefix = 2.0 *. p.c2 *. Model.flush_pages ~m:(fs *. blocks p) ~k:u2 in
  let chain = flush_p1 +. (float_of_int (max 0 (m - 1)) *. flush_prefix) in
  ((p.n1 *. flush_p1) +. (p.n2 *. chain)) /. total_procs p

let maintenance_per_update (p : t) ~chain_length strategy =
  if chain_length < 1 then invalid_arg "Nway_model: chain_length must be >= 1";
  match (strategy : Strategy.t) with
  | Strategy.Always_recompute -> 0.0
  | Strategy.Cache_invalidate ->
    let p_inval = 1.0 -. ((1.0 -. p.f) ** (2.0 *. p.l)) in
    total_procs p *. p_inval *. p.c_inval
  | Strategy.Update_cache_avm -> avm_update p chain_length
  | Strategy.Update_cache_rvm -> rvm_update p chain_length
  | Strategy.Update_cache_hoivm -> hoivm_update p chain_length

let cost (p : t) ~chain_length strategy =
  if chain_length < 1 then invalid_arg "Nway_model: chain_length must be >= 1";
  let m = chain_length in
  match (strategy : Strategy.t) with
  | Strategy.Always_recompute -> c_process_query p m
  | Strategy.Cache_invalidate ->
    let ip = Model.invalidation_probability p in
    let ps = mixed_proc_size p m in
    let t1 = c_process_query p m +. (2.0 *. p.c2 *. ps) in
    let t2 = p.c2 *. ps in
    let t3 = updates_per_query p *. total_procs p *. (1.0 -. ((1.0 -. p.f) ** (2.0 *. p.l))) *. p.c_inval in
    (ip *. t1) +. ((1.0 -. ip) *. t2) +. t3
  | Strategy.Update_cache_avm ->
    (p.c2 *. mixed_proc_size p m) +. (updates_per_query p *. avm_update p m)
  | Strategy.Update_cache_rvm ->
    (p.c2 *. mixed_proc_size p m) +. (updates_per_query p *. rvm_update p m)
  | Strategy.Update_cache_hoivm ->
    (p.c2 *. mixed_proc_size p m) +. hoivm_flush p m
    +. (updates_per_query p *. hoivm_update p m)
