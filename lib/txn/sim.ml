module Lock_manager = Dbproc_proc.Lock_manager
module Prng = Dbproc_util.Prng

type step = {
  locks : ([ `S | `X ] * Lock_manager.region) list;
  exec : Manager.t -> Manager.id -> unit;
}

type txn_spec = step list
type session = txn_spec list

type stats = {
  committed : int;
  victim_aborts : int;
  restarts : int;
  turns : int;
  broken_ilocks : int;
  commit_log : (int * int) list;
}

type sstate = {
  spec : step array array;
  mutable txn_i : int;
  mutable step_i : int;
  mutable cur : Manager.id option;
  mutable blocked : bool;
  mutable doomed : bool;  (* victim-aborted by another session; restart *)
}

let run ?(max_turns = 200_000) ?on_commit ~seed mgr sessions =
  let prng = Prng.create seed in
  let ss =
    Array.of_list
      (List.map
         (fun spec ->
           {
             spec = Array.of_list (List.map Array.of_list spec);
             txn_i = 0;
             step_i = 0;
             cur = None;
             blocked = false;
             doomed = false;
           })
         sessions)
  in
  let committed = ref 0
  and victim_aborts = ref 0
  and restarts = ref 0
  and turns = ref 0
  and broken_ilocks = ref 0
  and commit_log = ref [] in
  let finished s = s.txn_i >= Array.length s.spec in
  let unblock_all () = Array.iter (fun s -> s.blocked <- false) ss in
  (* Which session owns a manager transaction id right now. *)
  let owner_of id =
    let found = ref None in
    Array.iteri (fun i s -> if s.cur = Some id then found := Some i) ss;
    !found
  in
  let restart s =
    s.doomed <- false;
    s.blocked <- false;
    s.step_i <- 0;
    s.cur <- None;
    incr restarts
  in
  (* Try to finish session [si]'s current step: re-acquire its locks from
     the top (2PL re-grants held locks), resolving deadlocks as they
     surface, then execute.  Returns without executing if parked. *)
  let turn si =
    let s = ss.(si) in
    if s.doomed then restart s
    else begin
      let id =
        match s.cur with
        | Some id -> id
        | None ->
            let id = Manager.begin_ mgr in
            s.cur <- Some id;
            id
      in
      let step = s.spec.(s.txn_i).(s.step_i) in
      let rec acquire_all = function
        | [] -> `All_granted
        | ((mode, region) :: rest) as locks -> (
            match Manager.acquire mgr id ~mode region with
            | Manager.Granted -> acquire_all rest
            | Manager.Blocked _ ->
                s.blocked <- true;
                `Parked
            | Manager.Deadlock victim ->
                incr victim_aborts;
                if victim = id then begin
                  ignore (Manager.abort ~victim:true mgr id);
                  unblock_all ();
                  restart s;
                  `Self_aborted
                end
                else begin
                  ignore (Manager.abort ~victim:true mgr victim);
                  (match owner_of victim with
                  | Some oi ->
                      ss.(oi).doomed <- true;
                      ss.(oi).blocked <- false;
                      ss.(oi).cur <- None
                  | None -> ());
                  unblock_all ();
                  (* the victim's locks are gone — retry the same lock *)
                  acquire_all locks
                end)
      in
      match acquire_all step.locks with
      | `Parked | `Self_aborted -> ()
      | `All_granted ->
          step.exec mgr id;
          s.step_i <- s.step_i + 1;
          if s.step_i >= Array.length s.spec.(s.txn_i) then begin
            let broken = Manager.commit mgr id in
            broken_ilocks := !broken_ilocks + List.length broken;
            incr committed;
            commit_log := (si, s.txn_i) :: !commit_log;
            (match on_commit with
            | Some f -> f ~session:si ~txn:s.txn_i ~broken
            | None -> ());
            s.txn_i <- s.txn_i + 1;
            s.step_i <- 0;
            s.cur <- None;
            unblock_all ()
          end
    end
  in
  let rec loop () =
    let unfinished = ref [] in
    Array.iteri (fun i s -> if not (finished s) then unfinished := i :: !unfinished) ss;
    match !unfinished with
    | [] -> ()
    | unfinished ->
        let runnable = List.rev (List.filter (fun i -> not ss.(i).blocked) unfinished) in
        if runnable = [] then failwith "Txn.Sim: every unfinished session is blocked";
        incr turns;
        if !turns > max_turns then failwith "Txn.Sim: max_turns exceeded (livelock?)";
        let pick = List.nth runnable (Prng.int prng (List.length runnable)) in
        turn pick;
        loop ()
  in
  loop ();
  {
    committed = !committed;
    victim_aborts = !victim_aborts;
    restarts = !restarts;
    turns = !turns;
    broken_ilocks = !broken_ilocks;
    commit_log = List.rev !commit_log;
  }
