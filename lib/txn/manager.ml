open Dbproc_relation
open Dbproc_proc
module Cost = Dbproc_storage.Cost
module Wal = Dbproc_storage.Wal
module Metrics = Dbproc_obs.Metrics
module Histogram = Dbproc_obs.Histogram

type id = int

(* Physical undo, applied backwards on abort.  Records keep the tuple
   alongside the rid so the inverse survives rid churn inside the same
   transaction (insert-then-delete re-inserts under a fresh rid; the later
   undo then locates its target by value instead of by the dead rid). *)
type undo_op =
  | U_insert of { rel : Relation.t; rid : Dbproc_storage.Heap_file.rid; tuple : Tuple.t }
  | U_delete of { rel : Relation.t; tuple : Tuple.t }
  | U_update of {
      rel : Relation.t;
      rid : Dbproc_storage.Heap_file.rid;
      before : Tuple.t;
      after : Tuple.t;
    }

type undo = { u_txn : int; op : undo_op }

type txn_state = {
  id : int;
  lm_txn : Lock_manager.txn;
  mutable first_lsn : Wal.lsn option;  (* first undo record, None = read-only *)
  mutable n_undo : int;
  mutable block_start : float option;  (* sim clock at first unsatisfied acquire *)
}

type t = {
  cost : Cost.t;
  charges : Cost.charges;
  lm : Lock_manager.t;
  wal : undo Wal.t;
  notify_delta : rel:Relation.t -> inserted:Tuple.t list -> deleted:Tuple.t list -> unit;
  notify_update : rel:Relation.t -> changes:(Tuple.t * Tuple.t) list -> unit;
  live : (int, txn_state) Hashtbl.t;
  lm_ids : (Lock_manager.txn, int) Hashtbl.t;
  (* waits-for edges: blocked txn -> conflicting holders, refreshed on every
     acquire attempt and dropped on grant or transaction end *)
  edges : (int, int list) Hashtbl.t;
  blocked_h : Histogram.t;
  mutable next_id : int;
}

let create ?(charges = Cost.default_charges) ?(record_bytes = 100) ?notify_delta
    ?notify_update ~cost ~io () =
  let nop_delta ~rel:_ ~inserted:_ ~deleted:_ = () in
  let nop_update ~rel:_ ~changes:_ = () in
  {
    cost;
    charges;
    lm = Lock_manager.create ();
    wal = Wal.create ~io ~record_bytes ();
    notify_delta = Option.value notify_delta ~default:nop_delta;
    notify_update = Option.value notify_update ~default:nop_update;
    live = Hashtbl.create 16;
    lm_ids = Hashtbl.create 16;
    edges = Hashtbl.create 16;
    blocked_h = Histogram.named (Dbproc_obs.Ctx.histograms (Cost.ctx cost)) "txn.blocked_ms";
    next_id = 1;
  }

let lock_manager t = t.lm
let metrics t = Cost.metrics t.cost
let now t = Cost.total_ms t.charges t.cost

let state t id =
  match Hashtbl.find_opt t.live id with
  | Some st -> st
  | None -> invalid_arg (Printf.sprintf "Txn.Manager: transaction %d is not live" id)

let begin_ t =
  let id = t.next_id in
  t.next_id <- id + 1;
  let st =
    { id; lm_txn = Lock_manager.begin_txn t.lm; first_lsn = None; n_undo = 0; block_start = None }
  in
  Hashtbl.replace t.live id st;
  Hashtbl.replace t.lm_ids st.lm_txn id;
  Metrics.incr (metrics t) Metrics.Txn_begins;
  id

type acquire_result = Granted | Blocked of id list | Deadlock of id

(* DFS over the waits-for edges looking for a path that returns to [start];
   the returned list is every transaction on that cycle.  Dead transactions
   have no outgoing edges, so stale inbound edges cannot fabricate a
   cycle. *)
let cycle_through t start =
  let visited = Hashtbl.create 8 in
  let rec dfs node path =
    let succs = Option.value (Hashtbl.find_opt t.edges node) ~default:[] in
    List.fold_left
      (fun acc s ->
        match acc with
        | Some _ -> acc
        | None ->
            if s = start then Some path
            else if Hashtbl.mem visited s then None
            else begin
              Hashtbl.add visited s ();
              dfs s (s :: path)
            end)
      None succs
  in
  Hashtbl.add visited start ();
  dfs start [ start ]

let close_block_interval t st =
  match st.block_start with
  | None -> ()
  | Some t0 ->
      let waited = now t -. t0 in
      st.block_start <- None;
      Cost.charge_blocked t.cost ~ms:waited;
      Histogram.observe t.blocked_h (Float.max waited 0.0)

let acquire t id ~mode region =
  let st = state t id in
  match Lock_manager.acquire t.lm st.lm_txn ~mode region with
  | `Granted ->
      Hashtbl.remove t.edges id;
      close_block_interval t st;
      Granted
  | `Would_block holders ->
      let blockers =
        holders
        |> List.filter_map (fun h -> Hashtbl.find_opt t.lm_ids h)
        |> List.filter (fun b -> b <> id)
        |> List.sort_uniq compare
      in
      Hashtbl.replace t.edges id blockers;
      if st.block_start = None then begin
        st.block_start <- Some (now t);
        Metrics.incr (metrics t) Metrics.Txn_lock_waits
      end;
      (match cycle_through t id with
      | Some members ->
          Metrics.incr (metrics t) Metrics.Deadlock_cycles;
          Deadlock (List.fold_left max id members)
      | None -> Blocked blockers)

let blocked_on t id = Option.value (Hashtbl.find_opt t.edges id) ~default:[]
let set_ilock t ~owner ?tag region = Lock_manager.set_ilock t.lm ~owner ?tag region
let drop_ilocks t ~owner = Lock_manager.drop_ilocks t.lm ~owner

let log t st op =
  let lsn = Wal.append t.wal { u_txn = st.id; op } in
  if st.first_lsn = None then st.first_lsn <- Some lsn;
  st.n_undo <- st.n_undo + 1

let log_insert t id ~rel ~rid ~tuple = log t (state t id) (U_insert { rel; rid; tuple })
let log_delete t id ~rel ~tuple = log t (state t id) (U_delete { rel; tuple })

let log_update t id ~rel ~rid ~before ~after =
  log t (state t id) (U_update { rel; rid; before; after })

(* Locate a tuple by value when its logged rid no longer holds it (the rid
   died to a same-transaction delete and the value came back under a fresh
   rid during this replay).  The scan is charged — the slow path of a messy
   rollback costs real reads. *)
let find_rid rel tuple =
  let found = ref None in
  Relation.scan rel ~f:(fun rid tup -> if !found = None && Tuple.equal tup tuple then found := Some rid);
  !found

let locate rel rid expected =
  match Relation.get rel rid with
  | cur when Tuple.equal cur expected -> Some rid
  | _ -> find_rid rel expected
  | exception _ -> find_rid rel expected

let apply_undo t op =
  match op with
  | U_insert { rel; rid; tuple } -> (
      match locate rel rid tuple with
      | Some rid ->
          let deleted = Relation.delete rel rid in
          t.notify_delta ~rel ~inserted:[] ~deleted:[ deleted ]
      | None -> ())
  | U_delete { rel; tuple } ->
      ignore (Relation.insert rel tuple);
      t.notify_delta ~rel ~inserted:[ tuple ] ~deleted:[]
  | U_update { rel; rid; before; after } -> (
      match locate rel rid after with
      | Some rid ->
          let old = Relation.update rel rid before in
          t.notify_update ~rel ~changes:[ (old, before) ]
      | None -> ())

(* Remove a finished transaction everywhere, prune it out of other waiters'
   edge lists, and advance the undo log's truncation point to the oldest
   live transaction's first record. *)
let finish t st =
  Hashtbl.remove t.live st.id;
  Hashtbl.remove t.lm_ids st.lm_txn;
  Hashtbl.remove t.edges st.id;
  let waiters = Hashtbl.fold (fun w bs acc -> (w, bs) :: acc) t.edges [] in
  List.iter
    (fun (w, bs) ->
      if List.mem st.id bs then Hashtbl.replace t.edges w (List.filter (fun b -> b <> st.id) bs))
    waiters;
  let oldest =
    Hashtbl.fold
      (fun _ live acc ->
        match (live.first_lsn, acc) with
        | None, acc -> acc
        | Some l, None -> Some l
        | Some l, Some a -> Some (min l a))
      t.live None
  in
  Wal.truncate_before t.wal (Option.value oldest ~default:(Wal.next_lsn t.wal))

let commit t id =
  let st = state t id in
  close_block_interval t st;
  if st.n_undo > 0 then Wal.force t.wal;
  let broken = Lock_manager.commit t.lm st.lm_txn in
  if broken <> [] then Metrics.incr ~n:(List.length broken) (metrics t) Metrics.Txn_ilocks_broken;
  Metrics.incr (metrics t) Metrics.Txn_commits;
  finish t st;
  broken

let abort ?(victim = false) t id =
  let st = state t id in
  close_block_interval t st;
  let applied =
    match st.first_lsn with
    | None -> 0
    | Some lsn ->
        let mine =
          Wal.records_from t.wal lsn |> List.filter (fun (_, r) -> r.u_txn = st.id) |> List.rev
        in
        List.iter (fun (_, r) -> apply_undo t r.op) mine;
        List.length mine
  in
  if applied > 0 then Metrics.incr ~n:applied (metrics t) Metrics.Txn_undo_applied;
  Lock_manager.abort t.lm st.lm_txn;
  Metrics.incr (metrics t) Metrics.Txn_aborts;
  if victim then Metrics.incr (metrics t) Metrics.Deadlock_victims;
  finish t st;
  applied

let is_live t id = Hashtbl.mem t.live id
let live_count t = Hashtbl.length t.live
let undo_records_retained t = Wal.record_count t.wal
