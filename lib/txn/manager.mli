(** Real multi-statement transactions over one shared database: strict
    two-phase locking with blocking, deadlock detection, and WAL-backed
    abort.

    {!Dbproc_proc.Lock_manager} already knows the paper's S/X/I region
    model but only {e detects} conflicts (its [`Would_block] answer is a
    report, not a suspension).  This manager turns that detection into a
    transaction system:

    - {!begin_} / {!commit} / {!abort} delimit multi-statement
      transactions.  S and X locks are strict 2PL: everything is held to
      the end of the transaction.
    - {!acquire} either grants, reports [Blocked] (the caller must park
      the transaction and retry after some lock holder finishes), or
      reports [Deadlock victim]: the request closed a waits-for cycle and
      [victim] — the {e youngest} transaction on the cycle, i.e. the one
      that began last — must be aborted before anyone can make progress.
      The manager never aborts on its own; the scheduler that owns the
      victim's session calls {!abort} and restarts or fails it.
    - write statements log physical undo records into a write-ahead log
      ({!Dbproc_storage.Wal}); {!abort} replays the transaction's tail of
      that log {e backwards}, restoring heap pages and index entries to
      their pre-transaction state and handing each compensation to the
      [notify_*] callbacks so derived state (cached results, materialized
      views, Rete memories) follows.  Replay is fully charged: one read
      per log page touched plus the page writes of the compensating
      mutations.
    - i-locks ride along unchanged: an X grant breaks overlapping
      i-locks, {!commit} reports the broken owners.  A {e broken i-lock
      stays broken on abort} — the write may have been visible before the
      rollback, so invalidation must be conservative (exactly
      {!Dbproc_proc.Lock_manager}'s rule).

    Blocked time is simulated, not wall-clock: when a transaction first
    blocks the manager notes the simulated clock, and when the lock is
    finally granted (or the transaction dies) the elapsed simulated
    milliseconds — the priced work other transactions did in between —
    are recorded into the [txn.blocked_ms] histogram and accumulated via
    {!Dbproc_storage.Cost.charge_blocked}.  Everything is deterministic
    under a seeded scheduler ({!Sim}). *)

open Dbproc_relation
open Dbproc_proc

type t

type id = int
(** Transaction identifiers, assigned by {!begin_} from 1 upward in begin
    order — so larger id = younger transaction. *)

val create :
  ?charges:Dbproc_storage.Cost.charges ->
  ?record_bytes:int ->
  ?notify_delta:(rel:Relation.t -> inserted:Tuple.t list -> deleted:Tuple.t list -> unit) ->
  ?notify_update:(rel:Relation.t -> changes:(Tuple.t * Tuple.t) list -> unit) ->
  cost:Dbproc_storage.Cost.t ->
  io:Dbproc_storage.Io.t ->
  unit ->
  t
(** [charges] prices the simulated clock used for blocked-time accounting
    (default {!Dbproc_storage.Cost.default_charges}).  [record_bytes]
    sizes undo records for WAL page charging (default 100, the paper's
    S).  [notify_delta]/[notify_update] receive the {e compensating}
    mutations {!abort} applies, in undo order — wire them to
    {!Dbproc_proc.Manager.on_delta}/[on_update] so every maintenance
    strategy rolls its derived state back too. *)

val lock_manager : t -> Lock_manager.t
(** The underlying region lock table (shared with i-lock registration). *)

val begin_ : t -> id

type acquire_result =
  | Granted
  | Blocked of id list
      (** conflicting lock holders; the request is NOT granted and no
          state was changed except the waits-for edge — park and retry *)
  | Deadlock of id
      (** granting would close a waits-for cycle; the payload is the
          youngest transaction on the cycle (possibly the requester).
          Abort it, then retry. *)

val acquire : t -> id -> mode:[ `S | `X ] -> Lock_manager.region -> acquire_result
(** Strict 2PL acquire.  Re-acquisition and S-to-X upgrade by the same
    transaction never self-block, but an upgrade {e can} deadlock against
    another upgrader — see the upgrade-deadlock note in
    {!Dbproc_proc.Lock_manager.acquire}; this manager resolves that
    stand-off by youngest-victim abort like any other cycle. *)

val blocked_on : t -> id -> id list
(** Current waits-for edges of a blocked transaction (empty once
    granted). *)

val set_ilock : t -> owner:int -> ?tag:int -> Lock_manager.region -> unit
val drop_ilocks : t -> owner:int -> unit

(** {2 Undo logging}

    Call after applying the base-table mutation, while holding the
    covering X lock.  Each call appends one undo record to the WAL
    (charged as the log's tail pages fill). *)

val log_insert : t -> id -> rel:Relation.t -> rid:Dbproc_storage.Heap_file.rid -> tuple:Tuple.t -> unit
val log_delete : t -> id -> rel:Relation.t -> tuple:Tuple.t -> unit

val log_update :
  t -> id -> rel:Relation.t -> rid:Dbproc_storage.Heap_file.rid -> before:Tuple.t -> after:Tuple.t -> unit

val commit : t -> id -> Lock_manager.broken list
(** Force the undo log's tail (commit boundary, charged when the
    transaction logged anything), release every lock, and return the
    i-locks the transaction's writes broke. *)

val abort : ?victim:bool -> t -> id -> int
(** Replay the transaction's undo records backwards (heap, indexes and
    [notify_*]-subscribed derived state return to their pre-transaction
    values), release its locks, and return the number of undo records
    applied.  [victim:true] additionally counts a [deadlock.victims]
    abort.  I-locks broken by the transaction stay broken. *)

val is_live : t -> id -> bool
val live_count : t -> int

val undo_records_retained : t -> int
(** Undo records still in the WAL (the tail below the oldest live
    transaction is truncated at every commit/abort). *)
