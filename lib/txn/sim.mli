(** Deterministic multi-session scheduler over one {!Manager}.

    The engine is single-threaded; concurrency under contention is
    {e simulated} by interleaving sessions with a seeded PRNG.  Each
    session runs a list of transactions; each transaction is a list of
    statement steps, and a step is "acquire these locks, then execute
    this closure" — exactly the discipline the interpreter uses, so a
    step that blocks has executed nothing and can be retried verbatim.

    One scheduler turn picks a runnable session uniformly at random and
    tries to complete its current step: re-acquire the step's locks in
    order (re-acquisition is free under 2PL), then execute.  Blocking
    parks the session until any transaction finishes; a [Deadlock]
    verdict aborts the youngest transaction on the cycle ([victim:true])
    and — when the victim is another session — that session restarts its
    current transaction from step 0 against the rolled-back database,
    while the requester retries immediately.  Same seed, same sessions ⇒
    the same interleaving, the same deadlocks, the same victims and the
    same final database, every run. *)

module Lock_manager = Dbproc_proc.Lock_manager

type step = {
  locks : ([ `S | `X ] * Lock_manager.region) list;
      (** acquired in order before [exec] runs; held to transaction end *)
  exec : Manager.t -> Manager.id -> unit;
      (** the statement body: mutate relations, log undo, touch derived
          state.  Runs at most once per (txn attempt, step). *)
}

type txn_spec = step list
type session = txn_spec list

type stats = {
  committed : int;
  victim_aborts : int;
  restarts : int;  (** victim transactions re-run from step 0 *)
  turns : int;
  broken_ilocks : int;  (** i-locks reported broken across all commits *)
  commit_log : (int * int) list;
      (** (session index, transaction index) in commit order — the serial
          order a conflict-equivalent oracle must replay *)
}

val run :
  ?max_turns:int ->
  ?on_commit:(session:int -> txn:int -> broken:Lock_manager.broken list -> unit) ->
  seed:int ->
  Manager.t ->
  session list ->
  stats
(** [max_turns] (default 200_000) bounds the scheduler against livelock
    bugs — exceeding it raises [Failure].  [on_commit] fires after each
    commit with the i-locks it broke (the contention bench re-registers
    procedure i-locks there).
    @raise Failure if every unfinished session is blocked (a deadlock the
    detector missed — a bug) or [max_turns] is exceeded. *)
