open Dbproc_storage

type ('k, 'v) page = { id : int; mutable entries : ('k * 'v) list }

type ('k, 'v) t = {
  io : Io.t;
  file : int;
  per_page : int;
  hash : 'k -> int;
  equal : 'k -> 'k -> bool;
  buckets : ('k, 'v) page list array; (* chain: page list, first page first *)
  mutable pages : int; (* total allocated pages, also next page id *)
  mutable count : int;
}

let create ~io ~entry_bytes ~expected_entries ?(hash = Hashtbl.hash) ~equal () =
  if entry_bytes <= 0 then invalid_arg "Hash_index.create";
  let per_page = max 1 (Io.page_bytes io / entry_bytes) in
  let target_per_bucket = max 1 (7 * per_page / 10) in
  let buckets = max 1 ((max 1 expected_entries + target_per_bucket - 1) / target_per_bucket) in
  {
    io;
    file = Io.fresh_file io;
    per_page;
    hash;
    equal;
    buckets = Array.make buckets [];
    pages = 0;
    count = 0;
  }

let entry_count t = t.count
let bucket_count t = Array.length t.buckets
let page_count t = t.pages

let bucket_of t k = abs (t.hash k) mod Array.length t.buckets

let fresh_page t entries =
  let page = { id = t.pages; entries } in
  t.pages <- t.pages + 1;
  page

let read_page t page = Io.read t.io ~file:t.file ~page:page.id
let write_page t page = Io.write t.io ~file:t.file ~page:page.id

let insert t k v =
  if Io.counting t.io then Dbproc_obs.Metrics.incr (Io.metrics t.io) Dbproc_obs.Metrics.Hash_inserts;
  let b = bucket_of t k in
  let chain = t.buckets.(b) in
  (* Read along the chain until a page with room is found. *)
  let rec place = function
    | [] ->
      let fresh = fresh_page t [ (k, v) ] in
      t.buckets.(b) <- chain @ [ fresh ];
      write_page t fresh
    | page :: rest ->
      read_page t page;
      if List.length page.entries < t.per_page then begin
        page.entries <- (k, v) :: page.entries;
        write_page t page
      end
      else place rest
  in
  place chain;
  t.count <- t.count + 1

let remove t k pred =
  let b = bucket_of t k in
  let rec go = function
    | [] -> false
    | page :: rest ->
      read_page t page;
      let removed = ref false in
      let entries =
        List.filter
          (fun (k', v) ->
            if (not !removed) && t.equal k k' && pred v then begin
              removed := true;
              false
            end
            else true)
          page.entries
      in
      if !removed then begin
        page.entries <- entries;
        write_page t page;
        t.count <- t.count - 1;
        true
      end
      else go rest
  in
  go t.buckets.(b)

let search t k =
  if Io.counting t.io then Dbproc_obs.Metrics.incr (Io.metrics t.io) Dbproc_obs.Metrics.Hash_probes;
  let b = bucket_of t k in
  List.concat_map
    (fun page ->
      read_page t page;
      List.rev (List.filter_map (fun (k', v) -> if t.equal k k' then Some v else None) page.entries))
    t.buckets.(b)

let iter t ~f =
  Array.iter
    (fun chain ->
      List.iter
        (fun page ->
          read_page t page;
          List.iter (fun (k, v) -> f k v) (List.rev page.entries))
        chain)
    t.buckets

let chain_length t k = List.length t.buckets.(bucket_of t k)
