open Dbproc_storage

(* Entries carry an insertion sequence number, making every stored key
   unique.  Duplicate user keys then need no special casing in splits or
   descents: they are adjacent in composite-key order. *)

type ('k, 'v) node =
  | Leaf of {
      mutable entries : ('k * int * 'v) list; (* sorted by (key, seq) *)
      mutable next : int; (* next leaf, -1 if none *)
    }
  | Internal of {
      mutable keys : ('k * int) list; (* separators *)
      mutable children : int list; (* length = length keys + 1 *)
    }

type ('k, 'v) t = {
  io : Io.t;
  file : int;
  compare : 'k -> 'k -> int;
  cap : int;
  mutable nodes : ('k, 'v) node option array;
  mutable node_count : int;
  mutable root : int;
  mutable height : int;
  mutable entry_count : int;
  mutable next_seq : int;
}

let create ~io ~entry_bytes ~compare () =
  if entry_bytes <= 0 then invalid_arg "Btree.create";
  let cap = max 4 (Io.page_bytes io / entry_bytes) in
  let t =
    {
      io;
      file = Io.fresh_file io;
      compare;
      cap;
      nodes = Array.make 8 None;
      node_count = 0;
      root = 0;
      height = 1;
      entry_count = 0;
      next_seq = 0;
    }
  in
  t.nodes.(0) <- Some (Leaf { entries = []; next = -1 });
  t.node_count <- 1;
  t

let entry_count t = t.entry_count
let node_count t = t.node_count
let height t = t.height
let capacity t = t.cap

let cmp_composite t (k1, s1) (k2, s2) =
  match t.compare k1 k2 with 0 -> compare s1 s2 | c -> c

let node t id =
  match t.nodes.(id) with
  | Some n -> n
  | None -> invalid_arg "Btree: dangling node id"

let read_node t id =
  Io.read t.io ~file:t.file ~page:id;
  node t id

let write_node t id = Io.write t.io ~file:t.file ~page:id

let alloc t n =
  if t.node_count >= Array.length t.nodes then begin
    let bigger = Array.make (2 * Array.length t.nodes) None in
    Array.blit t.nodes 0 bigger 0 t.node_count;
    t.nodes <- bigger
  end;
  let id = t.node_count in
  t.nodes.(id) <- Some n;
  t.node_count <- id + 1;
  id

(* Number of separators [<= key]: routes equal keys to the child that
   starts at that separator, which is where insertion placed them. *)
let route t keys key =
  let rec go i = function
    | [] -> i
    | sep :: rest -> if cmp_composite t sep key <= 0 then go (i + 1) rest else i
  in
  go 0 keys

(* Leftmost child that may contain [key] ignoring sequence numbers. *)
let route_leftmost t keys key =
  let rec go i = function
    | [] -> i
    | (sep_key, _) :: rest -> if t.compare sep_key key < 0 then go (i + 1) rest else i
  in
  go 0 keys

let split_list lst at =
  let rec go acc i = function
    | rest when i = at -> (List.rev acc, rest)
    | [] -> (List.rev acc, [])
    | x :: rest -> go (x :: acc) (i + 1) rest
  in
  go [] 0 lst

let rec insert_at id ckey v t =
  match read_node t id with
  | Leaf leaf ->
    let rec ins = function
      | [] -> [ (fst ckey, snd ckey, v) ]
      | ((ek, es, _) as e) :: rest ->
        if cmp_composite t (ek, es) ckey >= 0 then (fst ckey, snd ckey, v) :: e :: rest
        else e :: ins rest
    in
    leaf.entries <- ins leaf.entries;
    let n = List.length leaf.entries in
    if n <= t.cap then begin
      write_node t id;
      None
    end
    else begin
      let left, right = split_list leaf.entries ((n + 1) / 2) in
      let right_id = alloc t (Leaf { entries = right; next = leaf.next }) in
      leaf.entries <- left;
      leaf.next <- right_id;
      write_node t id;
      write_node t right_id;
      let sep = match right with (k, s, _) :: _ -> (k, s) | [] -> assert false in
      Some (sep, right_id)
    end
  | Internal inner -> (
    let idx = route t inner.keys ckey in
    let child = List.nth inner.children idx in
    match insert_at child ckey v t with
    | None -> None
    | Some (sep, new_child) ->
      let keys_l, keys_r = split_list inner.keys idx in
      inner.keys <- keys_l @ (sep :: keys_r);
      let ch_l, ch_r = split_list inner.children (idx + 1) in
      inner.children <- ch_l @ (new_child :: ch_r);
      if List.length inner.keys <= t.cap then begin
        write_node t id;
        None
      end
      else begin
        let nkeys = List.length inner.keys in
        let mid = nkeys / 2 in
        let keys_left, keys_rest = split_list inner.keys mid in
        let promoted, keys_right =
          match keys_rest with k :: rest -> (k, rest) | [] -> assert false
        in
        let ch_left, ch_right = split_list inner.children (mid + 1) in
        let right_id = alloc t (Internal { keys = keys_right; children = ch_right }) in
        inner.keys <- keys_left;
        inner.children <- ch_left;
        write_node t id;
        write_node t right_id;
        Some (promoted, right_id)
      end)

let insert t key v =
  if Io.counting t.io then Dbproc_obs.Metrics.incr (Io.metrics t.io) Dbproc_obs.Metrics.Btree_inserts;
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  (match insert_at t.root (key, seq) v t with
  | None -> ()
  | Some (sep, right_id) ->
    let new_root = alloc t (Internal { keys = [ sep ]; children = [ t.root; right_id ] }) in
    t.root <- new_root;
    t.height <- t.height + 1;
    write_node t new_root);
  t.entry_count <- t.entry_count + 1

(* Descend to the leftmost leaf that may hold [key]. *)
let rec leaf_for t id key =
  match read_node t id with
  | Leaf _ -> id
  | Internal inner ->
    let idx = route_leftmost t inner.keys key in
    leaf_for t (List.nth inner.children idx) key

let search t key =
  if Io.counting t.io then Dbproc_obs.Metrics.incr (Io.metrics t.io) Dbproc_obs.Metrics.Btree_searches;
  (* acc collects matches most-recent-first; entries are visited in key
     (hence insertion) order, so one final reversal restores it. *)
  let rec walk id acc =
    if id = -1 then acc
    else
      match read_node t id with
      | Internal _ -> assert false
      | Leaf leaf ->
        let acc = ref acc in
        let beyond = ref false in
        List.iter
          (fun (k, _, v) ->
            let c = t.compare k key in
            if c = 0 then acc := v :: !acc else if c > 0 then beyond := true)
          leaf.entries;
        if !beyond then !acc else walk leaf.next !acc
  in
  List.rev (walk (leaf_for t t.root key) [])

let remove t key pred =
  let rec walk id =
    if id = -1 then false
    else
      match read_node t id with
      | Internal _ -> assert false
      | Leaf leaf ->
        let removed = ref false in
        let beyond = ref false in
        let entries =
          List.filter
            (fun (k, _, v) ->
              if !removed then true
              else begin
                let c = t.compare k key in
                if c > 0 then beyond := true;
                if c = 0 && pred v then begin
                  removed := true;
                  false
                end
                else true
              end)
            leaf.entries
        in
        if !removed then begin
          leaf.entries <- entries;
          write_node t id;
          t.entry_count <- t.entry_count - 1;
          true
        end
        else if !beyond then false
        else walk leaf.next
  in
  walk (leaf_for t t.root key)

type 'k bound = Unbounded | Inclusive of 'k | Exclusive of 'k

let range t ~lo ~hi ~f =
  if Io.counting t.io then Dbproc_obs.Metrics.incr (Io.metrics t.io) Dbproc_obs.Metrics.Btree_range_scans;
  let above_lo k =
    match lo with
    | Unbounded -> true
    | Inclusive b -> t.compare k b >= 0
    | Exclusive b -> t.compare k b > 0
  in
  let below_hi k =
    match hi with
    | Unbounded -> true
    | Inclusive b -> t.compare k b <= 0
    | Exclusive b -> t.compare k b < 0
  in
  let start_leaf =
    match lo with
    | Unbounded ->
      (* descend along the leftmost spine *)
      let rec leftmost id =
        match read_node t id with
        | Leaf _ -> id
        | Internal inner -> leftmost (List.hd inner.children)
      in
      leftmost t.root
    | Inclusive b | Exclusive b -> leaf_for t t.root b
  in
  let rec walk id =
    if id <> -1 then
      match read_node t id with
      | Internal _ -> assert false
      | Leaf leaf ->
        let past_end = ref false in
        List.iter
          (fun (k, _, v) ->
            if not !past_end then
              if not (below_hi k) then past_end := true
              else if above_lo k then f k v)
          leaf.entries;
        if not !past_end then walk leaf.next
  in
  walk start_leaf

let iter t ~f = range t ~lo:Unbounded ~hi:Unbounded ~f

let check_invariants t =
  let fail fmt = Format.kasprintf failwith fmt in
  let counted = ref 0 in
  let rec check id depth lo hi =
    (* keys in this subtree must satisfy lo <= k <= hi (composite order) *)
    match node t id with
    | Leaf leaf ->
      if depth <> t.height then fail "leaf %d at depth %d, height %d" id depth t.height;
      let rec sorted = function
        | (k1, s1, _) :: ((k2, s2, _) :: _ as rest) ->
          if cmp_composite t (k1, s1) (k2, s2) >= 0 then fail "leaf %d unsorted" id;
          sorted rest
        | _ -> ()
      in
      sorted leaf.entries;
      List.iter
        (fun (k, s, _) ->
          (match lo with
          | Some b when cmp_composite t (k, s) b < 0 -> fail "leaf %d below separator" id
          | _ -> ());
          match hi with
          | Some b when cmp_composite t (k, s) b >= 0 -> fail "leaf %d above separator" id
          | _ -> ())
        leaf.entries;
      counted := !counted + List.length leaf.entries
    | Internal inner ->
      if List.length inner.children <> List.length inner.keys + 1 then
        fail "internal %d arity mismatch" id;
      if inner.keys = [] then fail "internal %d empty" id;
      let rec sorted = function
        | k1 :: (k2 :: _ as rest) ->
          if cmp_composite t k1 k2 >= 0 then fail "internal %d unsorted" id;
          sorted rest
        | _ -> ()
      in
      sorted inner.keys;
      let bounds =
        let rec spans prev keys =
          match keys with
          | [] -> [ (prev, hi) ]
          | k :: rest -> (prev, Some k) :: spans (Some k) rest
        in
        spans lo inner.keys
      in
      List.iter2 (fun child (clo, chi) -> check child (depth + 1) clo chi) inner.children
        bounds
  in
  check t.root 1 None None;
  if !counted <> t.entry_count then
    fail "entry count mismatch: counted %d, recorded %d" !counted t.entry_count;
  (* leaf chain must visit every entry in order *)
  let chain = ref 0 in
  let last = ref None in
  let rec leftmost id =
    match node t id with
    | Leaf _ -> id
    | Internal inner -> leftmost (List.hd inner.children)
  in
  let rec follow id =
    if id <> -1 then
      match node t id with
      | Internal _ -> fail "leaf chain reached internal node"
      | Leaf leaf ->
        List.iter
          (fun (k, s, _) ->
            (match !last with
            | Some prev when cmp_composite t prev (k, s) >= 0 -> fail "leaf chain unsorted"
            | _ -> ());
            last := Some (k, s);
            incr chain)
          leaf.entries;
        follow leaf.next
  in
  follow (leftmost t.root);
  if !chain <> t.entry_count then fail "leaf chain count mismatch"
