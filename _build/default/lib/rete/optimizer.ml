open Dbproc_storage
open Dbproc_relation
open Dbproc_query

type update_profile = (string * float) list

type estimate = {
  shape : [ `Left_deep | `Right_deep ];
  cost_per_update_ms : float;
  per_relation : (string * float) list;
}

(* Unit costs: the paper's defaults.  The estimator is a planning device;
   using the same constants the engine charges keeps it honest. *)
let c1 = 1.0
let c2 = 30.0

(* -------------------------------------------------- measured contents *)

let selection_tuples (src : View_def.source) =
  Cost.with_disabled
    (Io.cost (Relation.io src.rel))
    (fun () ->
      let acc = ref [] in
      Relation.scan src.rel ~f:(fun _ tuple ->
          if Predicate.eval src.restriction tuple then acc := tuple :: !acc);
      !acc)

let logical_join left right (jt : Predicate.join_term) =
  List.concat_map
    (fun l ->
      List.filter_map
        (fun r ->
          if Predicate.eval_join jt ~left:l ~right:r then Some (Tuple.concat l r) else None)
        right)
    left

(* ------------------------------------------------------ abstract trees *)

(* A shape-agnostic description of the would-be network: leaf α-memories
   tagged with their source relation, join nodes with measured output
   cardinality. *)
type tree =
  | Leaf of { rel : string; selectivity : float; cardinality : float }
  | Join of { left : tree; right : tree; cardinality : float }

let cardinality = function
  | Leaf { cardinality; _ } | Join { cardinality; _ } -> cardinality

let pages ~record_bytes ~page_bytes n =
  Float.max (n *. float_of_int record_bytes /. float_of_int page_bytes) 1e-9

let yao = Dbproc_util.Yao.paper

(* Refreshing a memory of [n] tuples with [t] token effects: the engine
   reads and writes each distinct touched page. *)
let refresh_cost ~record_bytes ~page_bytes n t =
  if t <= 0.0 then 0.0
  else begin
    let m = pages ~record_bytes ~page_bytes n in
    2.0 *. c2 *. yao ~n:(Float.max n 1.0) ~m ~k:(Float.min t (Float.max n 1.0))
  end

(* Probing a memory of [n] tuples [t] times. *)
let probe_cost ~record_bytes ~page_bytes n t =
  if t <= 0.0 || n <= 0.0 then 0.0
  else begin
    let m = pages ~record_bytes ~page_bytes n in
    c2 *. yao ~n ~m ~k:t
  end

(* Token flow for one update transaction of [l] tuples against [rel]:
   returns (cost, tokens emitted upward). *)
let rec flow ~record_bytes ~page_bytes ~l ~rel tree =
  match tree with
  | Leaf leaf ->
    if leaf.rel <> rel then (0.0, 0.0)
    else begin
      let tokens = 2.0 *. float_of_int l *. leaf.selectivity in
      let cost =
        (c1 *. tokens) +. refresh_cost ~record_bytes ~page_bytes leaf.cardinality tokens
      in
      (cost, tokens)
    end
  | Join { left; right; cardinality = out_n } ->
    let cost_l, tok_l = flow ~record_bytes ~page_bytes ~l ~rel left in
    let cost_r, tok_r = flow ~record_bytes ~page_bytes ~l ~rel right in
    let matches_per from_n = if from_n <= 0.0 then 0.0 else out_n /. from_n in
    let emitted =
      (tok_l *. matches_per (cardinality left)) +. (tok_r *. matches_per (cardinality right))
    in
    let cost =
      cost_l +. cost_r
      +. probe_cost ~record_bytes ~page_bytes (cardinality right) tok_l
      +. probe_cost ~record_bytes ~page_bytes (cardinality left) tok_r
      +. refresh_cost ~record_bytes ~page_bytes out_n emitted
    in
    (cost, emitted)

(* ---------------------------------------------------- building trees *)

let leaf_of_source (src : View_def.source) tuples =
  let total = float_of_int (max 1 (Relation.cardinality src.rel)) in
  let n = float_of_int (List.length tuples) in
  Leaf { rel = Relation.name src.rel; selectivity = n /. total; cardinality = n }

let right_deep_applicable (def : View_def.t) =
  match def.steps with
  | [ _; s2 ] -> s2.left_attr >= Schema.arity (Relation.schema def.base.rel)
  | _ -> false

(* Build the measured tree for a shape.  Only chains of <= 2 steps get a
   distinct right-deep form (mirroring Builder.add_view). *)
let build_tree (def : View_def.t) shape =
  let srcs = View_def.sources def in
  let tuple_sets = List.map selection_tuples srcs in
  let leaves = List.map2 leaf_of_source srcs tuple_sets in
  match (shape, def.steps, leaves, tuple_sets) with
  | `Right_deep, [ s1; s2 ], [ leaf0; leaf1; leaf2 ], [ t0; t1; t2 ]
    when right_deep_applicable def ->
    let base_arity = Schema.arity (Relation.schema def.base.rel) in
    let inner_on =
      Predicate.join_term ~left_attr:(s2.left_attr - base_arity) ~op:s2.op
        ~right_attr:s2.right_attr
    in
    let inner_tuples = logical_join t1 t2 inner_on in
    let inner =
      Join { left = leaf1; right = leaf2; cardinality = float_of_int (List.length inner_tuples) }
    in
    let top_on =
      Predicate.join_term ~left_attr:s1.left_attr ~op:s1.op ~right_attr:s1.right_attr
    in
    let result = logical_join t0 inner_tuples top_on in
    Join { left = leaf0; right = inner; cardinality = float_of_int (List.length result) }
  | _, steps, leaf0 :: rest_leaves, t0 :: rest_tuples ->
    (* left-deep fold *)
    let tree, _, _ =
      List.fold_left2
        (fun (acc_tree, acc_tuples, _) ((step : View_def.join_step), leaf) tuples ->
          let on =
            Predicate.join_term ~left_attr:step.left_attr ~op:step.op
              ~right_attr:step.right_attr
          in
          let joined = logical_join acc_tuples tuples on in
          ( Join
              { left = acc_tree; right = leaf; cardinality = float_of_int (List.length joined) },
            joined,
            () ))
        (leaf0, t0, ())
        (List.combine steps rest_leaves)
        rest_tuples
    in
    tree
  | _ -> assert false

let estimate ?(page_bytes = 4000) ?(record_bytes = 100) ?(tuples_per_update = 25) def ~profile
    ~shape =
  let tree = build_tree def shape in
  let per_relation =
    List.map
      (fun (src : View_def.source) ->
        let rel = Relation.name src.rel in
        let cost, _ = flow ~record_bytes ~page_bytes ~l:tuples_per_update ~rel tree in
        (rel, cost))
      (View_def.sources def)
  in
  let total_weight = List.fold_left (fun acc (_, w) -> acc +. w) 0.0 profile in
  let weighted =
    if total_weight <= 0.0 then 0.0
    else
      List.fold_left
        (fun acc (rel, w) ->
          acc +. (w /. total_weight *. Option.value (List.assoc_opt rel per_relation) ~default:0.0))
        0.0 profile
  in
  { shape; cost_per_update_ms = weighted; per_relation }

let choose_shape ?page_bytes ?record_bytes ?tuples_per_update def ~profile =
  if not (right_deep_applicable def) then `Left_deep
  else begin
    let left =
      estimate ?page_bytes ?record_bytes ?tuples_per_update def ~profile ~shape:`Left_deep
    in
    let right =
      estimate ?page_bytes ?record_bytes ?tuples_per_update def ~profile ~shape:`Right_deep
    in
    if right.cost_per_update_ms <= left.cost_per_update_ms then `Right_deep else `Left_deep
  end
