open Dbproc_storage
open Dbproc_relation
open Dbproc_query

type select_key = string * Predicate.t

type beta_key = select_key * select_key * Predicate.join_term

type t = {
  net : Network.t;
  mutable alphas : (select_key * Network.mem_node) list;
  mutable betas : (beta_key * Network.mem_node) list;
  mutable shared_alpha : int;
  mutable shared_beta : int;
}

let create ~io ~record_bytes () =
  { net = Network.create ~io ~record_bytes (); alphas = []; betas = []; shared_alpha = 0; shared_beta = 0 }

let network t = t.net

let select_key (source : View_def.source) : select_key =
  (Relation.name source.rel, source.restriction)

let key_equal (r1, p1) (r2, p2) = String.equal r1 r2 && Predicate.equal p1 p2

let interval_of_restriction = Planner.interval_of_restriction

(* Current qualifying tuples of a source, with no cost accounting. *)
let initial_selection (source : View_def.source) =
  let rel = source.rel in
  Cost.with_disabled
    (Io.cost (Relation.io rel))
    (fun () ->
      let acc = ref [] in
      Relation.scan rel ~f:(fun _rid tuple ->
          if Predicate.eval source.restriction tuple then acc := tuple :: !acc);
      List.rev !acc)

let logical_join left_tuples right_tuples (jt : Predicate.join_term) =
  List.concat_map
    (fun l ->
      List.filter_map
        (fun r -> if Predicate.eval_join jt ~left:l ~right:r then Some (Tuple.concat l r) else None)
        right_tuples)
    left_tuples

let add_select t (source : View_def.source) ~name =
  let key = select_key source in
  match List.find_opt (fun (k, _) -> key_equal k key) t.alphas with
  | Some (_, node) ->
    t.shared_alpha <- t.shared_alpha + 1;
    (node, true)
  | None ->
    let node =
      Network.add_tconst t.net ~rel:(Relation.name source.rel) ~pred:source.restriction
        ~interval:(interval_of_restriction source.restriction)
        ~name
    in
    Memory.load (Network.memory node) (initial_selection source);
    t.alphas <- (key, node) :: t.alphas;
    (node, false)

let add_joined t ~left ~right ~on ~name =
  let out = Network.add_join t.net ~left ~right ~on ~name in
  Memory.load (Network.memory out)
    (logical_join
       (Memory.contents (Network.memory left))
       (Memory.contents (Network.memory right))
       on);
  out

(* A β-memory over two shareable selections, reused across views. *)
let add_shared_beta t ~(left_src : View_def.source) ~(right_src : View_def.source) ~on ~name =
  let key = (select_key left_src, select_key right_src, on) in
  let matches ((l, r, jt) : beta_key) = key_equal l (select_key left_src) && key_equal r (select_key right_src) && jt = on in
  match List.find_opt (fun (k, _) -> matches k) t.betas with
  | Some (_, node) ->
    t.shared_beta <- t.shared_beta + 1;
    (node, true)
  | None ->
    let left, _ = add_select t left_src ~name:(name ^ ".left") in
    let right, _ = add_select t right_src ~name:(name ^ ".right") in
    let node = add_joined t ~left ~right ~on ~name in
    t.betas <- (key, node) :: t.betas;
    (node, false)

type built = { result : Network.mem_node; shared_alpha : bool; shared_beta : bool }

let left_deep t (def : View_def.t) =
  let base, shared_alpha = add_select t def.base ~name:(def.name ^ ".alpha0") in
  let result, _ =
    List.fold_left
      (fun (acc, i) (step : View_def.join_step) ->
        let right, _ =
          add_select t step.source ~name:(Printf.sprintf "%s.alpha%d" def.name (i + 1))
        in
        let on =
          Predicate.join_term ~left_attr:step.left_attr ~op:step.op ~right_attr:step.right_attr
        in
        (add_joined t ~left:acc ~right ~on ~name:(Printf.sprintf "%s.beta%d" def.name i), i + 1))
      (base, 0) def.steps
  in
  { result; shared_alpha; shared_beta = false }

(* A chain is right-deep-able when every step past the first joins on an
   attribute of the immediately preceding source: then the suffix
   s_i ⋈ s_{i+1} ⋈ ... can be precomputed bottom-up as nested β-memories
   and the base probes the spine with a single join. *)
let right_deep_chain (def : View_def.t) =
  let offsets = View_def.source_offsets def in
  let source_arity (src : View_def.source) = Schema.arity (Relation.schema src.rel) in
  let sources = View_def.sources def in
  let rec check i = function
    | [] -> true
    | (step : View_def.join_step) :: rest ->
      (* step i (1-based) joins accumulated schema to source i; for a
         right-deep spine its left attr must fall in source i-1 *)
      let prev_off = List.nth offsets (i - 1) in
      let prev_arity = source_arity (List.nth sources (i - 1)) in
      step.left_attr >= prev_off
      && step.left_attr < prev_off + prev_arity
      && check (i + 1) rest
  in
  match def.steps with
  | [] | [ _ ] -> false
  | _ :: rest -> check 2 rest (* the first step's left attr is checked at the top join *)

let right_deep t (def : View_def.t) =
  let offsets = View_def.source_offsets def in
  (* Build the spine bottom-up: innermost pair first.  Step indices are
     1-based over def.steps; source i = step i's source. *)
  let steps = Array.of_list def.steps in
  let n = Array.length steps in
  (* rebase step i's left attr onto source i-1's local schema *)
  let local_left i =
    let step = steps.(i) in
    step.View_def.left_attr - List.nth offsets i
    (* offsets are per source; step i joins source i+1 in source terms *)
  in
  (* innermost join: sources of steps n-2 and n-1 *)
  let innermost_on =
    Predicate.join_term
      ~left_attr:(local_left (n - 1))
      ~op:steps.(n - 1).View_def.op
      ~right_attr:steps.(n - 1).View_def.right_attr
  in
  let spine, shared_beta =
    add_shared_beta t
      ~left_src:steps.(n - 2).View_def.source
      ~right_src:steps.(n - 1).View_def.source
      ~on:innermost_on
      ~name:(Printf.sprintf "%s.spine%d" def.name (n - 1))
  in
  (* extend the spine upward: source of step i joins (spine of i+1..) *)
  let rec extend i spine shared_any =
    if i < 1 then (spine, shared_any)
    else begin
      let on =
        Predicate.join_term ~left_attr:(local_left i) ~op:steps.(i).View_def.op
          ~right_attr:steps.(i).View_def.right_attr
      in
      let left, _ =
        add_select t steps.(i - 1).View_def.source
          ~name:(Printf.sprintf "%s.alpha%d" def.name i)
      in
      let joined = add_joined t ~left ~right:spine ~on ~name:(Printf.sprintf "%s.spine%d" def.name i) in
      extend (i - 1) joined shared_any
    end
  in
  let spine, _ = extend (n - 2) spine shared_beta in
  let base, shared_alpha = add_select t def.base ~name:(def.name ^ ".alpha0") in
  let top_on =
    Predicate.join_term ~left_attr:steps.(0).View_def.left_attr ~op:steps.(0).View_def.op
      ~right_attr:steps.(0).View_def.right_attr
  in
  let result = add_joined t ~left:base ~right:spine ~on:top_on ~name:(def.name ^ ".result") in
  { result; shared_alpha; shared_beta }

let add_view t ?(shape = `Right_deep) (def : View_def.t) =
  match (shape, def.steps) with
  | _, [] ->
    let result, shared_alpha = add_select t def.base ~name:(def.name ^ ".alpha") in
    { result; shared_alpha; shared_beta = false }
  | `Right_deep, _ when right_deep_chain def -> right_deep t def
  | _, _ -> left_deep t def

let shared_alpha_count (t : t) = t.shared_alpha
let shared_beta_count (t : t) = t.shared_beta
