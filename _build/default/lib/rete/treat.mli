(** TREAT-style view maintenance: α-memories only, no β-memories.

    TREAT (Miranker, 1987 — the contemporaneous alternative to Forgy's
    Rete) keeps the selected inputs (α-memories) materialized but
    recomputes join results from them on every token, storing only the
    final result ("conflict set" in production-system terms; the
    procedure value here).  Compared with the paper's two algorithms:

    - vs {b RVM}: no β-memories to refresh — cheaper when inner relations
      churn (the ext-update-mix pathology) — but every token re-joins
      through all the other α-memories;
    - vs {b AVM}: joins probe the {e selected} α-memories (f2-reduced)
      instead of the full base relations, and α screening is shared.

    Supported chains are those with the right-deep property (each join
    step keyed on the immediately preceding source) — the paper's P1/P2
    shapes at any length.  α-memories are shared across views with the
    same (relation, restriction), like {!Builder}.

    Charges per transaction mirror the engine's other maintainers: C1 per
    covered token screening (indexed discrimination), one page read per
    distinct probed memory page, one read + one write per distinct
    refreshed page (α and result memories), all deduplicated per
    transaction. *)

open Dbproc_query

type t
(** A TREAT engine holding the shared α-memories of a view population. *)

val create : io:Dbproc_storage.Io.t -> record_bytes:int -> unit -> t

exception Unsupported of string

val add_view : t -> View_def.t -> int
(** Install a view, returning its id.  Initial contents are computed
    without cost accounting.
    @raise Unsupported if a join step is not keyed on the immediately
    preceding source, or is not an equality. *)

val read : t -> int -> Dbproc_relation.Tuple.t list
(** The view's stored result, one page read per page. *)

val cardinality : t -> int -> int

val apply_delta :
  t -> rel:string -> inserted:Dbproc_relation.Tuple.t list ->
  deleted:Dbproc_relation.Tuple.t list -> unit
(** Process one update transaction. *)

val matches_recompute : t -> int -> bool

val shared_alpha_count : t -> int
