open Dbproc_storage
open Dbproc_relation
open Dbproc_query

exception Unsupported of string

type source_node = {
  rel_name : string;
  restriction : Predicate.t;
  interval :
    (int * Value.t Dbproc_index.Btree.bound * Value.t Dbproc_index.Btree.bound) option;
  mem : Memory.t;
}

type view = {
  id : int;
  def : View_def.t;
  sources : source_node array;
  local_left : int array; (* per step i (1-based): left attr local to source i-1 *)
  right_attr : int array; (* per step i: attr within source i *)
  offsets : int array; (* start of each source's segment in the flat schema *)
  result : Memory.t;
}

type t = {
  io : Io.t;
  record_bytes : int;
  mutable registry : ((string * Predicate.t) * source_node) list;
  mutable views : view list;
  by_rel : (string, (view * int) list ref) Hashtbl.t;
  mutable shared : int;
}

let create ~io ~record_bytes () =
  { io; record_bytes; registry = []; views = []; by_rel = Hashtbl.create 8; shared = 0 }

let selection_tuples (src : View_def.source) =
  Cost.with_disabled
    (Io.cost (Relation.io src.rel))
    (fun () ->
      let acc = ref [] in
      Relation.scan src.rel ~f:(fun _ tuple ->
          if Predicate.eval src.restriction tuple then acc := tuple :: !acc);
      List.rev !acc)

let alpha_for t (src : View_def.source) ~name =
  let key = (Relation.name src.rel, src.restriction) in
  match
    List.find_opt (fun ((r, p), _) -> r = fst key && Predicate.equal p (snd key)) t.registry
  with
  | Some (_, node) ->
    t.shared <- t.shared + 1;
    node
  | None ->
    let mem = Memory.create ~io:t.io ~record_bytes:t.record_bytes ~name () in
    Memory.load mem (selection_tuples src);
    let node =
      {
        rel_name = Relation.name src.rel;
        restriction = src.restriction;
        interval = Planner.interval_of_restriction src.restriction;
        mem;
      }
    in
    t.registry <- (key, node) :: t.registry;
    node

let add_view t (def : View_def.t) =
  let sources_list = View_def.sources def in
  let offsets = Array.of_list (View_def.source_offsets def) in
  let steps = Array.of_list def.View_def.steps in
  (* validate the right-deep property and precompute local attrs *)
  let local_left = Array.make (Array.length steps + 1) 0 in
  let right_attr = Array.make (Array.length steps + 1) 0 in
  Array.iteri
    (fun idx (step : View_def.join_step) ->
      let i = idx + 1 in
      if step.op <> Predicate.Eq then raise (Unsupported "TREAT requires equality joins");
      let prev_src = List.nth sources_list (i - 1) in
      let prev_arity = Schema.arity (Relation.schema prev_src.rel) in
      if step.left_attr < offsets.(i - 1) || step.left_attr >= offsets.(i - 1) + prev_arity
      then raise (Unsupported "TREAT requires chains keyed on the preceding source");
      local_left.(i) <- step.left_attr - offsets.(i - 1);
      right_attr.(i) <- step.right_attr)
    steps;
  let id = List.length t.views in
  let sources =
    Array.of_list
      (List.mapi
         (fun i src -> alpha_for t src ~name:(Printf.sprintf "%s.alpha%d" def.View_def.name i))
         sources_list)
  in
  let result =
    Memory.create ~io:t.io ~record_bytes:t.record_bytes
      ~name:(def.View_def.name ^ ".result") ()
  in
  (* probe indexes: extending left probes source i-1 on local_left.(i);
     extending right probes source i on right_attr.(i) *)
  for i = 1 to Array.length steps do
    Memory.ensure_probe_index sources.(i - 1).mem ~attr:local_left.(i);
    Memory.ensure_probe_index sources.(i).mem ~attr:right_attr.(i)
  done;
  let view = { id; def; sources; local_left; right_attr; offsets; result } in
  (* initial result: uncharged recompute *)
  Cost.with_disabled (Io.cost t.io) (fun () ->
      Memory.load result (Executor.run (Planner.compile def)));
  t.views <- view :: t.views;
  Array.iteri
    (fun s node ->
      let cell =
        match Hashtbl.find_opt t.by_rel node.rel_name with
        | Some cell -> cell
        | None ->
          let cell = ref [] in
          Hashtbl.replace t.by_rel node.rel_name cell;
          cell
      in
      cell := (view, s) :: !cell)
    sources;
  id

let find_view t id =
  match List.find_opt (fun v -> v.id = id) t.views with
  | Some v -> v
  | None -> invalid_arg (Printf.sprintf "Treat: unknown view %d" id)

let read t id = Memory.read (find_view t id).result
let cardinality t id = Memory.cardinality (find_view t id).result

let covered interval tuple =
  match interval with
  | None -> true
  | Some (attr, lo, hi) ->
    let v = Tuple.get tuple attr in
    let above =
      match lo with
      | Dbproc_index.Btree.Unbounded -> true
      | Inclusive b -> Value.compare v b >= 0
      | Exclusive b -> Value.compare v b > 0
    in
    let below =
      match hi with
      | Dbproc_index.Btree.Unbounded -> true
      | Inclusive b -> Value.compare v b <= 0
      | Exclusive b -> Value.compare v b < 0
    in
    above && below

(* From a token at source [s] of [view], compute the result-delta tuples
   by probing the other alpha memories: leftward to source 0, then
   rightward to the last source. *)
let expand view s tuple =
  let n_steps = Array.length view.local_left - 1 in
  let lefts = ref [ tuple ] in
  for i = s downto 1 do
    (* composites currently cover sources i..s; probe source i-1 *)
    lefts :=
      List.concat_map
        (fun composite ->
          let key = Tuple.get composite view.right_attr.(i) in
          Memory.probe view.sources.(i - 1).mem ~attr:view.local_left.(i) key
          |> List.rev_map (fun left_tuple -> Tuple.concat left_tuple composite))
        !lefts
  done;
  let out = ref !lefts in
  for i = s + 1 to n_steps do
    (* composites cover sources 0..i-1; key position is the step's global
       left attr in the flat schema *)
    let key_pos = view.offsets.(i - 1) + view.local_left.(i) in
    out :=
      List.concat_map
        (fun composite ->
          let key = Tuple.get composite key_pos in
          Memory.probe view.sources.(i).mem ~attr:view.right_attr.(i) key
          |> List.rev_map (fun right_tuple -> Tuple.concat composite right_tuple))
        !out
  done;
  !out

let apply_delta t ~rel ~inserted ~deleted =
  Io.with_touch_dedup t.io (fun () ->
      (match Hashtbl.find_opt t.by_rel rel with
      | None -> ()
      | Some cell ->
        let feed sign tuples =
          List.iter
            (fun tuple ->
              (* Phase 1: screen and apply the token once per DISTINCT
                 alpha node — several views may share one memory. *)
              let applied_nodes = ref [] in
              List.iter
                (fun (view, s) ->
                  let node = view.sources.(s) in
                  if
                    (not (List.exists (fun (n, _) -> n.mem == node.mem) !applied_nodes))
                    && covered node.interval tuple
                  then begin
                    Cost.cpu_screen (Io.cost t.io);
                    if Predicate.eval node.restriction tuple then begin
                      let applied =
                        match sign with
                        | `Minus -> Memory.delete_logical node.mem tuple
                        | `Plus ->
                          Memory.insert_logical node.mem tuple;
                          true
                      in
                      applied_nodes := (node, applied) :: !applied_nodes
                    end
                  end)
                !cell;
              (* Phase 2: expand the token through every view whose
                 source node accepted it.  For a minus token the alpha
                 was updated first, so expansion joins against the
                 post-removal contents — correct for multiset deltas,
                 mirroring Network. *)
              List.iter
                (fun (view, s) ->
                  let node = view.sources.(s) in
                  match
                    List.find_opt (fun (n, _) -> n.mem == node.mem) !applied_nodes
                  with
                  | Some (_, true) ->
                    let composites = expand view s tuple in
                    List.iter
                      (fun c ->
                        match sign with
                        | `Plus -> Memory.insert_logical view.result c
                        | `Minus -> ignore (Memory.delete_logical view.result c))
                      composites
                  | _ -> ())
                !cell)
            tuples
        in
        feed `Minus deleted;
        feed `Plus inserted);
      List.iter (fun (_, node) -> Memory.flush node.mem) t.registry;
      List.iter (fun v -> Memory.flush v.result) t.views)

let matches_recompute t id =
  let view = find_view t id in
  Cost.with_disabled (Io.cost t.io) (fun () ->
      let sorted l = List.sort Tuple.compare l in
      let stored = sorted (Memory.contents view.result) in
      let fresh = sorted (Executor.run (Planner.compile view.def)) in
      List.length stored = List.length fresh && List.for_all2 Tuple.equal stored fresh)

let shared_alpha_count t = t.shared
