lib/rete/treat.ml: Array Cost Dbproc_index Dbproc_query Dbproc_relation Dbproc_storage Executor Hashtbl Io List Memory Planner Predicate Printf Relation Schema Tuple Value View_def
