lib/rete/memory.ml: Cost Dbproc_relation Dbproc_storage Hashtbl Heap_file Io List Option Printf Tuple Value
