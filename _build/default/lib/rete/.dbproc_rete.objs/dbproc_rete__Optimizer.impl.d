lib/rete/optimizer.ml: Cost Dbproc_query Dbproc_relation Dbproc_storage Dbproc_util Float Io List Option Predicate Relation Schema Tuple View_def
