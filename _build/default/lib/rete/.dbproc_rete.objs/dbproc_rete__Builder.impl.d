lib/rete/builder.ml: Array Cost Dbproc_query Dbproc_relation Dbproc_storage Io List Memory Network Planner Predicate Printf Relation Schema String Tuple View_def
