lib/rete/memory.mli: Dbproc_relation Dbproc_storage Tuple Value
