lib/rete/builder.mli: Dbproc_index Dbproc_query Dbproc_relation Dbproc_storage Network View_def
