lib/rete/network.ml: Btree Buffer Cost Dbproc_index Dbproc_relation Dbproc_storage Dbproc_util Format Hashtbl Io List Memory Predicate Printf String Tuple Value
