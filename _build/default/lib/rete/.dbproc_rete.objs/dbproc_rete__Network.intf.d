lib/rete/network.mli: Dbproc_index Dbproc_relation Dbproc_storage Memory Predicate Tuple Value
