lib/rete/treat.mli: Dbproc_query Dbproc_relation Dbproc_storage View_def
