lib/rete/optimizer.mli: Dbproc_query View_def
