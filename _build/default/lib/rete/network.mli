(** The Rete discrimination network (after Forgy [For82], as used for view
    maintenance in [Han87b]).

    After an update transaction, tokens representing inserted ([+]) and
    deleted ([−]) tuples enter at the root and propagate:

    - the root broadcasts to the t-const nodes of the token's relation;
    - a t-const node screens the token against its restriction.  When the
      restriction is a single-attribute interval, discrimination is
      {e indexed}: the interval cover check is free and [C1] is charged
      only for covered tokens (rule indexing); otherwise every token
      charges [C1];
    - α- and β-memories apply the token logically at once and batch their
      stored-page refresh until the end of the transaction;
    - an and node activated from one side probes the opposite memory and
      emits a concatenated token per match, tagged like the input.

    {!apply_delta} runs one whole transaction: deletes propagate first,
    then inserts, then every memory flushes its page batch, all inside one
    page-touch dedup scope. *)

open Dbproc_relation

type sign = Plus | Minus

type token = { sign : sign; tuple : Tuple.t }

type mem_node
(** An α- or β-memory wired into the network. *)

type t

val create : io:Dbproc_storage.Io.t -> record_bytes:int -> unit -> t
val io : t -> Dbproc_storage.Io.t

(** {2 Construction} (used by {!Builder}; exposed for tests) *)

val add_tconst :
  t ->
  rel:string ->
  pred:Predicate.t ->
  interval:(int * Value.t Dbproc_index.Btree.bound * Value.t Dbproc_index.Btree.bound) option ->
  name:string ->
  mem_node
(** Add a t-const node feeding a fresh α-memory.  [interval] enables
    indexed discrimination ([(attr, lo, hi)] covering exactly the tuples
    that satisfy [pred]'s terms on [attr]). *)

val add_join :
  t -> left:mem_node -> right:mem_node -> on:Predicate.join_term -> name:string -> mem_node
(** Add an and node over two memories, feeding a fresh β-memory.  Probe
    indexes are installed on both inputs for equality joins. *)

val memory : mem_node -> Memory.t
(** The underlying memory (read it as a procedure result, inspect it in
    tests). *)

(** {2 Operation} *)

val apply_delta : t -> rel:string -> inserted:Tuple.t list -> deleted:Tuple.t list -> unit
(** Process one update transaction against base relation [rel]. *)

val memories : t -> Memory.t list
(** Every memory in the network, construction order. *)

val tconst_count : t -> int
val join_count : t -> int

val to_dot : t -> string
(** The network as a Graphviz digraph, shaped like the paper's Figures 1,
    3 and 16: root at the top, t-const nodes as boxes, α/β-memories as
    ellipses annotated with their current cardinality, and-nodes as
    diamonds.  Shared memories naturally appear with several outgoing
    edges. *)
