(** Static optimization of the Rete join-tree shape.

    Section 8 of the paper: "Static optimization methods will use
    statistics on relative update frequency when designing an optimal plan
    for maintaining procedures (e.g. an optimized Rete network)."  This
    module is that optimizer for the library's view shapes.

    For a 3-way chain [σ(R1) ⋈ σ(R2) ⋈ R3] two network shapes exist:

    - {b right-deep} — [σR1 ⋈ (σR2 ⋈ R3)]: the inner join is a
      precomputed β-memory, so an R1 delta needs a single probe (the
      paper's model-2 network, optimal when R1 takes all the updates);
    - {b left-deep} — [(σR1 ⋈ σR2) ⋈ R3]: the intermediate β is the small
      [σR1 ⋈ σR2] result, so an R2 delta refreshes far less state
      (optimal when R2 churns).

    {!choose_shape} estimates the expected page I/O per update transaction
    for each shape — memory sizes measured from the current database,
    page-touch counts from the Appendix-A Yao function — weights them by
    the declared per-relation update frequencies, and picks the cheaper
    shape.  {!estimate} exposes the numbers for inspection and tests. *)

open Dbproc_query

type update_profile = (string * float) list
(** Relation name → relative update frequency (need not be normalized;
    relations absent from the list are treated as never updated). *)

type estimate = {
  shape : [ `Left_deep | `Right_deep ];
  cost_per_update_ms : float;  (** weighted expected maintenance I/O + CPU *)
  per_relation : (string * float) list;  (** unweighted cost of one update txn on each relation *)
}

val estimate :
  ?page_bytes:int ->
  ?record_bytes:int ->
  ?tuples_per_update:int ->
  View_def.t ->
  profile:update_profile ->
  shape:[ `Left_deep | `Right_deep ] ->
  estimate
(** Expected maintenance cost of one update transaction under the given
    shape, using the paper's default unit costs.  [tuples_per_update]
    defaults to the paper's l = 25.  Memory cardinalities are measured
    from the current relation contents (uncharged — this is compile-time
    planning). *)

val choose_shape :
  ?page_bytes:int ->
  ?record_bytes:int ->
  ?tuples_per_update:int ->
  View_def.t ->
  profile:update_profile ->
  [ `Left_deep | `Right_deep ]
(** The cheaper shape under the profile.  Views that cannot be built
    right-deep (fewer than two join steps, or a second join keyed on the
    base relation) return [`Left_deep]. *)
