(** Building Rete networks from view definitions, with shared
    subexpressions.

    The builder keeps one network for a whole procedure population and a
    registry of existing α-memories keyed by (relation, restriction): a new
    view whose source selection matches an existing one reuses that node
    — the paper's sharing of the [C_f(R1)] subexpression between P1 and P2
    procedures (the dashed boxes of Figures 3 and 16).  Two-level
    subexpressions (the model-2 [σ(R2) ⋈ R3] β-memory) are likewise shared
    when two views use identical sources and join condition.

    Join-tree shape: with [`Right_deep] (the default, matching the paper's
    model-2 network) a 2-step view [R1 ⋈ (R2 ⋈ R3)] builds the inner join
    as a precomputed β-memory, so an R1 delta needs only one probe.
    [`Left_deep] builds [(R1 ⋈ R2) ⋈ R3] — useful as an ablation.  Views
    whose second join condition references the base relation cannot be
    right-deep and silently fall back to left-deep. *)

open Dbproc_query

type t

val create : io:Dbproc_storage.Io.t -> record_bytes:int -> unit -> t
val network : t -> Network.t

type built = {
  result : Network.mem_node;  (** the view's result memory *)
  shared_alpha : bool;  (** base selection reused an existing α-memory *)
  shared_beta : bool;  (** inner join reused an existing β-memory *)
}

val add_view : t -> ?shape:[ `Left_deep | `Right_deep ] -> View_def.t -> built
(** Wire a view into the network.  Memory contents are initialized from
    the current base relations without cost accounting. *)

val shared_alpha_count : t -> int
(** Total α-memory reuses so far. *)

val shared_beta_count : t -> int

val interval_of_restriction :
  Dbproc_relation.Predicate.t ->
  (int
  * Dbproc_relation.Value.t Dbproc_index.Btree.bound
  * Dbproc_relation.Value.t Dbproc_index.Btree.bound)
  option
(** The single-attribute interval enabling indexed discrimination, if the
    restriction constrains exactly one attribute (exposed for tests). *)
