lib/workload/database.mli: Catalog Dbproc_costmodel Dbproc_query Dbproc_relation Dbproc_storage Dbproc_util Model Params Relation Tuple View_def
