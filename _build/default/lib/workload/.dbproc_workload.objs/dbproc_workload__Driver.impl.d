lib/workload/driver.ml: Array Cost Database Dbproc_costmodel Dbproc_proc Dbproc_relation Dbproc_storage Dbproc_util Float Format List Locality Model Params Prng Relation Strategy
