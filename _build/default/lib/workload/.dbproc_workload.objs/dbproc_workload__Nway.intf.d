lib/workload/nway.mli: Dbproc_costmodel Params Strategy
