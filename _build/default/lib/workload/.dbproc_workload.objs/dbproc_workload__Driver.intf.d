lib/workload/driver.mli: Dbproc_costmodel Dbproc_proc Format Model Params Strategy
