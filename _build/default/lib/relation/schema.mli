(** Relation schemas: named, typed attribute lists. *)

type attr = { name : string; ty : Value.ty }

type t

val create : (string * Value.ty) list -> t
(** @raise Invalid_argument on duplicate attribute names or an empty
    list. *)

val arity : t -> int
val attrs : t -> attr list
val attr : t -> int -> attr

val index_of_opt : t -> string -> int option
val index_of : t -> string -> int
(** @raise Not_found if the attribute does not exist. *)

val mem : t -> string -> bool

val qualify : prefix:string -> t -> t
(** [qualify ~prefix s] renames every attribute to ["prefix.name"] — used
    when concatenating join-result schemas whose inputs share attribute
    names. *)

val concat : t -> t -> t
(** Append attribute lists.  @raise Invalid_argument on a name clash;
    {!qualify} the inputs first if they overlap. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
