type attr = { name : string; ty : Value.ty }

type t = attr array

let check_distinct attrs =
  let seen = Hashtbl.create 8 in
  Array.iter
    (fun a ->
      if Hashtbl.mem seen a.name then
        invalid_arg (Printf.sprintf "Schema: duplicate attribute %S" a.name);
      Hashtbl.replace seen a.name ())
    attrs

let create = function
  | [] -> invalid_arg "Schema.create: empty"
  | specs ->
    let attrs = Array.of_list (List.map (fun (name, ty) -> { name; ty }) specs) in
    check_distinct attrs;
    attrs

let arity = Array.length
let attrs t = Array.to_list t

let attr t i =
  if i < 0 || i >= Array.length t then invalid_arg "Schema.attr: index out of range";
  t.(i)

let index_of_opt t name =
  let rec go i =
    if i >= Array.length t then None else if t.(i).name = name then Some i else go (i + 1)
  in
  go 0

let index_of t name =
  match index_of_opt t name with Some i -> i | None -> raise Not_found

let mem t name = index_of_opt t name <> None

let qualify ~prefix t = Array.map (fun a -> { a with name = prefix ^ "." ^ a.name }) t

let concat a b =
  let joined = Array.append a b in
  check_distinct joined;
  joined

let equal a b =
  Array.length a = Array.length b
  && Array.for_all2 (fun x y -> x.name = y.name && x.ty = y.ty) a b

let pp ppf t =
  Format.fprintf ppf "(%a)"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       (fun ppf a -> Format.fprintf ppf "%s:%a" a.name Value.pp_ty a.ty))
    (attrs t)
