type t = { io : Dbproc_storage.Io.t; relations : (string, Relation.t) Hashtbl.t }

let create ~io = { io; relations = Hashtbl.create 8 }
let io t = t.io

let add t rel =
  let name = Relation.name rel in
  if Hashtbl.mem t.relations name then
    invalid_arg (Printf.sprintf "Catalog: duplicate relation %S" name);
  Hashtbl.replace t.relations name rel

let create_relation t ~name ~schema ~tuple_bytes =
  let rel = Relation.create ~io:t.io ~name ~schema ~tuple_bytes in
  add t rel;
  rel

let find t name =
  match Hashtbl.find_opt t.relations name with Some r -> r | None -> raise Not_found

let find_opt t name = Hashtbl.find_opt t.relations name
let names t = Hashtbl.fold (fun name _ acc -> name :: acc) t.relations [] |> List.sort compare

let pp ppf t =
  Format.pp_print_list
    ~pp_sep:Format.pp_print_newline
    (fun ppf name -> Relation.pp ppf (find t name))
    ppf (names t)
