type t = Int of int | Float of float | Str of string

type ty = TInt | TFloat | TStr

let type_of = function Int _ -> TInt | Float _ -> TFloat | Str _ -> TStr

let rank = function Int _ -> 0 | Float _ -> 1 | Str _ -> 2

let compare a b =
  match (a, b) with
  | Int x, Int y -> Int.compare x y
  | Float x, Float y -> Float.compare x y
  | Str x, Str y -> String.compare x y
  | _ -> Int.compare (rank a) (rank b)

let equal a b = compare a b = 0
let hash = Hashtbl.hash

let pp ppf = function
  | Int i -> Format.fprintf ppf "%d" i
  | Float f -> Format.fprintf ppf "%g" f
  | Str s -> Format.fprintf ppf "%S" s

let to_string v = Format.asprintf "%a" pp v

let pp_ty ppf = function
  | TInt -> Format.pp_print_string ppf "int"
  | TFloat -> Format.pp_print_string ppf "float"
  | TStr -> Format.pp_print_string ppf "str"
