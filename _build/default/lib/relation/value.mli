(** Attribute values.  The simulator stores OCaml values; byte widths are
    declared at the schema level (the paper's [S] and [d] parameters), so
    the value type only needs ordering and equality. *)

type t = Int of int | Float of float | Str of string

type ty = TInt | TFloat | TStr

val type_of : t -> ty

val compare : t -> t -> int
(** Total order.  Comparing values of different types orders by type
    (Int < Float < Str); predicates in well-typed queries never do this. *)

val equal : t -> t -> bool
val hash : t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string
val pp_ty : Format.formatter -> ty -> unit
