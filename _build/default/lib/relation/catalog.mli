(** A named collection of relations sharing one I/O layer. *)

type t

val create : io:Dbproc_storage.Io.t -> t
val io : t -> Dbproc_storage.Io.t

val add : t -> Relation.t -> unit
(** @raise Invalid_argument on a duplicate name. *)

val create_relation :
  t -> name:string -> schema:Schema.t -> tuple_bytes:int -> Relation.t
(** Create and register in one step. *)

val find : t -> string -> Relation.t
(** @raise Not_found *)

val find_opt : t -> string -> Relation.t option
val names : t -> string list
val pp : Format.formatter -> t -> unit
