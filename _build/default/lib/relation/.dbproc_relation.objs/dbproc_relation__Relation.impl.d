lib/relation/relation.ml: Btree Cost Dbproc_index Dbproc_storage Format Hash_index Heap_file Io List Printf Schema Tuple Value
