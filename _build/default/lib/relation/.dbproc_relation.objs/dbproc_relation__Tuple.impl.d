lib/relation/tuple.ml: Array Format Hashtbl Int Schema Value
