lib/relation/predicate.ml: Format List Schema Tuple Value
