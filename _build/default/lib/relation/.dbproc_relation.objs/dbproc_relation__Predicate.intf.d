lib/relation/predicate.mli: Format Schema Tuple Value
