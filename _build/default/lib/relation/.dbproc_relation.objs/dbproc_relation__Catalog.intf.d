lib/relation/catalog.mli: Dbproc_storage Format Relation Schema
