lib/relation/catalog.ml: Dbproc_storage Format Hashtbl List Printf Relation
