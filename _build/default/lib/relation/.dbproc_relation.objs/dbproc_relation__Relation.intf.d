lib/relation/relation.mli: Dbproc_index Dbproc_storage Format Schema Tuple Value
