(** A stabbing index over intervals: given many (possibly unbounded,
    possibly open-ended) intervals, find all that cover a query point.

    This is the data structure behind rule indexing: i-lock regions and
    Rete t-const conditions are intervals over an attribute's domain, and
    every updated tuple value must be checked against all of them.  A
    linear scan is O(locks); the centered interval tree here answers a
    stab query in O(log n + matches).

    The index is mutable; mutations mark it dirty and the tree is rebuilt
    lazily on the next query (subscriptions change rarely, queries are
    per-tuple). *)

module type ORDERED = sig
  type t

  val compare : t -> t -> int
end

module Make (Key : ORDERED) : sig
  type bound = Neg_inf | Pos_inf | Incl of Key.t | Excl of Key.t

  type 'a t
  (** An index mapping intervals to values of type ['a]. *)

  val create : unit -> 'a t

  val add : 'a t -> lo:bound -> hi:bound -> 'a -> unit
  (** Register an interval.  [lo] must be [Neg_inf]/[Incl]/[Excl], [hi]
      [Pos_inf]/[Incl]/[Excl]; an empty interval (e.g. [Incl 5, Excl 5])
      is accepted and simply never matches. *)

  val remove : 'a t -> ('a -> bool) -> int
  (** Remove every interval whose value satisfies the predicate; returns
      how many were removed. *)

  val stab : 'a t -> Key.t -> 'a list
  (** All values whose interval covers the point, in no particular
      order. *)

  val size : 'a t -> int

  val values : 'a t -> 'a list
  (** All registered values (including those of empty intervals), in no
      particular order. *)

  val covers : lo:bound -> hi:bound -> Key.t -> bool
  (** Direct cover test for one interval (no index). *)
end
