lib/util/prng.mli:
