lib/util/yao.ml: Float
