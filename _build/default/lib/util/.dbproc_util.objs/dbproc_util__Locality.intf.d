lib/util/locality.mli: Prng
