lib/util/interval_index.ml: Array List
