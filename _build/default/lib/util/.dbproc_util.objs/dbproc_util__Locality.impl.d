lib/util/locality.ml: Float Prng
