lib/util/interval_index.mli:
