lib/util/ascii_table.ml: Buffer Float List Printf String
