lib/util/ascii_chart.ml: Array Buffer Char Float Hashtbl List Printf String
