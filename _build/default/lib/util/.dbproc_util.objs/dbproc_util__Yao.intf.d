lib/util/yao.mli:
