(** Deterministic pseudo-random number generation (SplitMix64).

    Every stochastic component of the simulator draws from an explicit
    {!t} so that workloads, data generation and experiments are exactly
    reproducible from a seed.  SplitMix64 passes BigCrush and supports
    cheap splitting, which we use to give independent streams to
    independent subsystems. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] makes a fresh generator.  Equal seeds give equal
    streams. *)

val split : t -> t
(** [split t] derives an independent generator and advances [t]. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val float : t -> float
(** [float t] is uniform in [[0, 1)]. *)

val int : t -> int -> int
(** [int t bound] is uniform in [[0, bound)].  [bound] must be positive. *)

val bool : t -> bool
(** Fair coin. *)

val pick : t -> 'a array -> 'a
(** [pick t arr] is a uniformly chosen element.  [arr] must be non-empty. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val sample_without_replacement : t -> n:int -> k:int -> int list
(** [sample_without_replacement t ~n ~k] draws [k] distinct indices from
    [[0, n)], in no particular order.  Requires [0 <= k <= n]. *)
