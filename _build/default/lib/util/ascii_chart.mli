(** Crude ASCII charts: line plots of several series over a shared x-axis,
    and region ("who wins where") maps.  Used by the bench harness so that
    the reproduced figures can be eyeballed against the paper's plots. *)

val line_plot :
  ?width:int ->
  ?height:int ->
  ?log_y:bool ->
  x_label:string ->
  y_label:string ->
  series:(string * (float * float) list) list ->
  unit ->
  string
(** [line_plot ~series ()] renders each series with its own mark character
    (first letter of its name, uniquified).  Points outside the computed
    bounds are clamped.  [log_y] plots log10 of y (non-positive values are
    dropped).  Default size 72x20 characters. *)

val region_map :
  ?width:int ->
  ?height:int ->
  x_label:string ->
  y_label:string ->
  x_range:float * float ->
  y_range:float * float ->
  ?log_x:bool ->
  classify:(x:float -> y:float -> char) ->
  unit ->
  string
(** [region_map ~classify ()] samples the (x, y) grid and prints the
    character [classify] returns for each cell — the paper's figures 12-15
    and 19 are maps of this kind.  [log_x] samples x log-uniformly (the
    paper's object-size axis is logarithmic). *)
