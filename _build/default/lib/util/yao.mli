(** Page-touch estimation: the Yao function and its approximations.

    Given a file of [n] records stored on [m] blocks, the Yao function
    [y n m k] gives the expected number of distinct blocks touched when [k]
    records are accessed at random without replacement [Yao77].  The paper
    (Appendix A) uses a piecewise approximation built on Cardenas'
    formula [Car75]; that approximation is what all the cost formulas call,
    so it is reproduced here exactly. *)

val exact : n:int -> m:int -> k:int -> float
(** [exact ~n ~m ~k] is the exact Yao function
    [m * (1 - C(n - n/m, k) / C(n, k))].  Requires [m > 0], [n >= m] and
    [0 <= k <= n].  Computed with log-space binomials, so it is stable for
    the paper's parameter ranges (n up to 10^6).

    @raise Invalid_argument if the preconditions do not hold. *)

val cardenas : m:float -> k:float -> float
(** [cardenas ~m ~k] is Cardenas' approximation [m * (1 - (1 - 1/m)^k)].
    Close to {!exact} when the blocking factor [n/m] exceeds ~10 and [m] is
    not near 1. *)

val paper : n:float -> m:float -> k:float -> float
(** [paper ~n ~m ~k] is the approximation defined in Appendix A of the
    paper, used by every cost formula:
    - if [k <= 1] the result is [k] (a stored object occupies at least the
      fraction of a page its records need);
    - else if [m < 1] the result is [1];
    - else if [m < 2] the result is [min k m];
    - otherwise Cardenas' approximation.

    Arguments are real-valued because the paper passes expected (fractional)
    record and block counts. *)

val upper_bound_m : float
(** The bound [U] below which [paper] returns [min k m] instead of
    Cardenas' approximation.  The paper uses [U = 2]. *)
