(** Small statistics helpers used by the workload driver and benches. *)

val mean : float list -> float
(** Arithmetic mean.  [nan] on the empty list. *)

val variance : float list -> float
(** Population variance.  [nan] on the empty list. *)

val stddev : float list -> float

val percentile : float -> float list -> float
(** [percentile p xs] with [p] in [[0, 1]]; linear interpolation between
    order statistics.  @raise Invalid_argument on an empty list or [p]
    outside [[0, 1]]. *)

val geometric_mean : float list -> float
(** Geometric mean of positive values. *)

val relative_error : expected:float -> actual:float -> float
(** [(actual - expected) / expected]; 0 when both are 0. *)

type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  p50 : float;
  p95 : float;
}

val summarize : float list -> summary
(** @raise Invalid_argument on the empty list. *)

val pp_summary : Format.formatter -> summary -> unit
