(** Aligned plain-text tables for bench and experiment output. *)

type align = Left | Right

type t

val create : ?aligns:align list -> header:string list -> unit -> t
(** [create ~header ()] starts a table.  [aligns] defaults to [Right] for
    every column; it is padded/truncated to the header width. *)

val add_row : t -> string list -> unit
(** Rows shorter than the header are padded with empty cells; longer rows
    raise [Invalid_argument]. *)

val add_float_row : ?decimals:int -> t -> string -> float list -> unit
(** [add_float_row t label xs] adds a row whose first cell is [label] and
    remaining cells are [xs] formatted with [decimals] (default 2) places.
    NaN renders as ["-"]. *)

val render : t -> string
(** The table as a string, including a header separator line. *)

val print : t -> unit
(** [render] to stdout followed by a newline. *)
