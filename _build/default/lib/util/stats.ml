let mean = function
  | [] -> Float.nan
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let variance = function
  | [] -> Float.nan
  | xs ->
    let m = mean xs in
    let sq = List.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs in
    sq /. float_of_int (List.length xs)

let stddev xs = sqrt (variance xs)

let percentile p xs =
  if xs = [] then invalid_arg "Stats.percentile: empty list";
  if p < 0.0 || p > 1.0 then invalid_arg "Stats.percentile: p out of range";
  let arr = Array.of_list xs in
  Array.sort compare arr;
  let n = Array.length arr in
  let rank = p *. float_of_int (n - 1) in
  let lo = int_of_float (floor rank) in
  let hi = int_of_float (ceil rank) in
  if lo = hi then arr.(lo)
  else begin
    let frac = rank -. float_of_int lo in
    (arr.(lo) *. (1.0 -. frac)) +. (arr.(hi) *. frac)
  end

let geometric_mean = function
  | [] -> Float.nan
  | xs ->
    let logsum =
      List.fold_left
        (fun acc x ->
          if x <= 0.0 then invalid_arg "Stats.geometric_mean: nonpositive value"
          else acc +. log x)
        0.0 xs
    in
    exp (logsum /. float_of_int (List.length xs))

let relative_error ~expected ~actual =
  if expected = 0.0 && actual = 0.0 then 0.0
  else (actual -. expected) /. expected

type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  p50 : float;
  p95 : float;
}

let summarize xs =
  if xs = [] then invalid_arg "Stats.summarize: empty list";
  {
    count = List.length xs;
    mean = mean xs;
    stddev = stddev xs;
    min = List.fold_left Float.min Float.infinity xs;
    max = List.fold_left Float.max Float.neg_infinity xs;
    p50 = percentile 0.5 xs;
    p95 = percentile 0.95 xs;
  }

let pp_summary ppf s =
  Format.fprintf ppf "n=%d mean=%.3f sd=%.3f min=%.3f p50=%.3f p95=%.3f max=%.3f"
    s.count s.mean s.stddev s.min s.p50 s.p95 s.max
