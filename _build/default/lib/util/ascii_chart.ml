let unique_marks names =
  let used = Hashtbl.create 8 in
  List.map
    (fun name ->
      let base = if name = "" then '?' else Char.uppercase_ascii name.[0] in
      let rec pick c offset =
        if Hashtbl.mem used c then
          let next =
            if offset < String.length name then Char.uppercase_ascii name.[offset]
            else Char.chr (Char.code 'a' + (Hashtbl.length used mod 26))
          in
          pick next (offset + 1)
        else c
      in
      let mark = pick base 1 in
      Hashtbl.replace used mark ();
      mark)
    names

let bounds points =
  List.fold_left
    (fun (xmin, xmax, ymin, ymax) (x, y) ->
      (Float.min xmin x, Float.max xmax x, Float.min ymin y, Float.max ymax y))
    (Float.infinity, Float.neg_infinity, Float.infinity, Float.neg_infinity)
    points

let line_plot ?(width = 72) ?(height = 20) ?(log_y = false) ~x_label ~y_label ~series () =
  let transform (x, y) = if log_y then if y > 0.0 then Some (x, log10 y) else None else Some (x, y) in
  let all_points =
    List.concat_map (fun (_, pts) -> List.filter_map transform pts) series
  in
  if all_points = [] then "(no data)"
  else begin
    let xmin, xmax, ymin, ymax = bounds all_points in
    let xspan = if xmax > xmin then xmax -. xmin else 1.0 in
    let yspan = if ymax > ymin then ymax -. ymin else 1.0 in
    let grid = Array.make_matrix height width ' ' in
    let marks = unique_marks (List.map fst series) in
    List.iter2
      (fun (_, pts) mark ->
        List.iter
          (fun pt ->
            match transform pt with
            | None -> ()
            | Some (x, y) ->
              let col =
                int_of_float (Float.round ((x -. xmin) /. xspan *. float_of_int (width - 1)))
              in
              let row =
                height - 1
                - int_of_float (Float.round ((y -. ymin) /. yspan *. float_of_int (height - 1)))
              in
              let col = max 0 (min (width - 1) col) in
              let row = max 0 (min (height - 1) row) in
              grid.(row).(col) <- mark)
          pts)
      series marks;
    let buf = Buffer.create ((width + 16) * (height + 4)) in
    let y_of_row row =
      let y = ymin +. (yspan *. float_of_int (height - 1 - row) /. float_of_int (height - 1)) in
      if log_y then 10.0 ** y else y
    in
    Buffer.add_string buf
      (Printf.sprintf "%s%s\n" y_label (if log_y then " (log scale)" else ""));
    Array.iteri
      (fun row line ->
        Buffer.add_string buf (Printf.sprintf "%10.2f |" (y_of_row row));
        Buffer.add_string buf (String.init width (fun c -> line.(c)));
        Buffer.add_char buf '\n')
      grid;
    Buffer.add_string buf (Printf.sprintf "%10s +%s\n" "" (String.make width '-'));
    Buffer.add_string buf
      (Printf.sprintf "%10s  %-12g%*s%g   (%s)\n" "" xmin (width - 14) "" xmax x_label);
    List.iter2
      (fun (name, _) mark -> Buffer.add_string buf (Printf.sprintf "  %c = %s\n" mark name))
      series marks;
    Buffer.contents buf
  end

let region_map ?(width = 60) ?(height = 20) ~x_label ~y_label ~x_range ~y_range ?(log_x = false)
    ~classify () =
  let x_lo, x_hi = x_range in
  let y_lo, y_hi = y_range in
  let x_at col =
    let frac = float_of_int col /. float_of_int (width - 1) in
    if log_x then begin
      let llo = log10 x_lo and lhi = log10 x_hi in
      10.0 ** (llo +. (frac *. (lhi -. llo)))
    end
    else x_lo +. (frac *. (x_hi -. x_lo))
  in
  let y_at row =
    let frac = float_of_int (height - 1 - row) /. float_of_int (height - 1) in
    y_lo +. (frac *. (y_hi -. y_lo))
  in
  let buf = Buffer.create ((width + 16) * (height + 4)) in
  Buffer.add_string buf (Printf.sprintf "%s\n" y_label);
  for row = 0 to height - 1 do
    Buffer.add_string buf (Printf.sprintf "%10.3f |" (y_at row));
    for col = 0 to width - 1 do
      Buffer.add_char buf (classify ~x:(x_at col) ~y:(y_at row))
    done;
    Buffer.add_char buf '\n'
  done;
  Buffer.add_string buf (Printf.sprintf "%10s +%s\n" "" (String.make width '-'));
  Buffer.add_string buf
    (Printf.sprintf "%10s  %-12g%*s%g   (%s%s)\n" "" x_lo (width - 14) "" x_hi x_label
       (if log_x then ", log scale" else ""));
  Buffer.contents buf
