(** The paper's hot/cold locality-of-reference model.

    A fraction [z] of all objects (the {e hot set}) receives a fraction
    [1 - z] of all references; the remaining objects share the rest.  With
    [z = 0.2] this is the classic 80/20 rule; the paper's "high locality"
    setting is [z = 0.05]. *)

type t
(** A locality model over [n] objects. *)

val create : z:float -> n:int -> t
(** [create ~z ~n] builds the model.  Requires [0 < z < 1] (use
    {!uniform} for no skew) and [n >= 1].  Objects [0 .. hot_count - 1]
    are the hot set, so callers that need a random hot/cold assignment
    should shuffle their own object identifiers. *)

val uniform : n:int -> t
(** Uniform references: every object equally likely. *)

val n : t -> int
val hot_count : t -> int
(** Size of the hot set, [max 1 (round (z * n))]. *)

val sample : t -> Prng.t -> int
(** [sample t prng] draws an object index according to the model. *)

val access_probability : t -> int -> float
(** [access_probability t i] is the per-reference probability of object
    [i] under the model. *)

val expected_updates_between_accesses : t -> hot:bool -> updates_per_query:float -> float
(** The paper's X (hot) and Y (cold) quantities: the expected number of
    update transactions between two accesses to one given object of the
    hot or cold class, when there are [updates_per_query] updates per
    procedure access.  X = n (z / (1-z)) k/q; Y = n ((1-z) / z) k/q.
    For a {!uniform} model both classes give [n *. updates_per_query]. *)
