type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix (Int64.of_int seed) }

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t = { state = next_int64 t }

let float t =
  let bits53 = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits53 *. (1.0 /. 9007199254740992.0)

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int";
  (* Rejection sampling over the high bits to avoid modulo bias. *)
  let bound64 = Int64.of_int bound in
  let rec draw () =
    let raw = Int64.shift_right_logical (next_int64 t) 1 in
    let value = Int64.rem raw bound64 in
    if Int64.sub raw value > Int64.sub (Int64.sub Int64.max_int bound64) 1L
    then draw ()
    else Int64.to_int value
  in
  draw ()

let bool t = Int64.logand (next_int64 t) 1L = 1L

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Prng.pick";
  arr.(int t (Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let sample_without_replacement t ~n ~k =
  if k < 0 || k > n then invalid_arg "Prng.sample_without_replacement";
  (* Floyd's algorithm: O(k) expected time, O(k) space. *)
  let chosen = Hashtbl.create (2 * k) in
  for j = n - k to n - 1 do
    let candidate = int t (j + 1) in
    if Hashtbl.mem chosen candidate then Hashtbl.replace chosen j ()
    else Hashtbl.replace chosen candidate ()
  done;
  Hashtbl.fold (fun idx () acc -> idx :: acc) chosen []
