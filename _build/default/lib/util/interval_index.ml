module type ORDERED = sig
  type t

  val compare : t -> t -> int
end

module Make (Key : ORDERED) = struct
  type bound = Neg_inf | Pos_inf | Incl of Key.t | Excl of Key.t

  type 'a interval = { lo : bound; hi : bound; value : 'a }

  type 'a node = {
    center : Key.t;
    here : 'a interval list; (* overlap the center value *)
    by_lo : 'a interval array; (* here, ascending lo *)
    by_hi : 'a interval array; (* here, descending hi *)
    left : 'a node option;
    right : 'a node option;
  }

  type 'a t = {
    mutable intervals : 'a interval list;
    mutable root : 'a node option;
    mutable always : 'a list; (* (Neg_inf, Pos_inf) intervals: cover everything *)
    mutable dirty : bool;
  }

  let create () = { intervals = []; root = None; always = []; dirty = true }

  (* point vs bound tests *)
  let above_lo lo q =
    match lo with
    | Neg_inf -> true
    | Pos_inf -> false
    | Incl b -> Key.compare q b >= 0
    | Excl b -> Key.compare q b > 0

  let below_hi hi q =
    match hi with
    | Pos_inf -> true
    | Neg_inf -> false
    | Incl b -> Key.compare q b <= 0
    | Excl b -> Key.compare q b < 0

  let covers ~lo ~hi q = above_lo lo q && below_hi hi q

  let is_empty_interval lo hi =
    match (lo, hi) with
    | (Incl a | Excl a), (Incl b | Excl b) -> (
      match Key.compare a b with
      | c when c > 0 -> true
      | 0 -> ( match (lo, hi) with Incl _, Incl _ -> false | _ -> true)
      | _ -> false)
    | _ -> false

  let add t ~lo ~hi value =
    (match lo with
    | Pos_inf -> invalid_arg "Interval_index.add: lo cannot be Pos_inf"
    | Neg_inf | Incl _ | Excl _ -> ());
    (match hi with
    | Neg_inf -> invalid_arg "Interval_index.add: hi cannot be Neg_inf"
    | Pos_inf | Incl _ | Excl _ -> ());
    t.intervals <- { lo; hi; value } :: t.intervals;
    t.dirty <- true

  let remove t pred =
    let keep, dropped = List.partition (fun iv -> not (pred iv.value)) t.intervals in
    t.intervals <- keep;
    t.dirty <- true;
    List.length dropped

  let size t = List.length t.intervals
  let values t = List.map (fun iv -> iv.value) t.intervals

  (* ordering of lo bounds (Neg_inf smallest; Incl v before Excl v) *)
  let compare_lo a b =
    match (a, b) with
    | Neg_inf, Neg_inf -> 0
    | Neg_inf, _ -> -1
    | _, Neg_inf -> 1
    | Pos_inf, Pos_inf -> 0
    | Pos_inf, _ -> 1
    | _, Pos_inf -> -1
    | (Incl x | Excl x), (Incl y | Excl y) -> (
      match Key.compare x y with
      | 0 -> (
        match (a, b) with Incl _, Excl _ -> -1 | Excl _, Incl _ -> 1 | _ -> 0)
      | c -> c)

  (* ordering of hi bounds (Pos_inf largest; Excl v before Incl v) *)
  let compare_hi a b =
    match (a, b) with
    | Pos_inf, Pos_inf -> 0
    | Pos_inf, _ -> 1
    | _, Pos_inf -> -1
    | Neg_inf, Neg_inf -> 0
    | Neg_inf, _ -> -1
    | _, Neg_inf -> 1
    | (Incl x | Excl x), (Incl y | Excl y) -> (
      match Key.compare x y with
      | 0 -> (
        match (a, b) with Excl _, Incl _ -> -1 | Incl _, Excl _ -> 1 | _ -> 0)
      | c -> c)

  (* Value-based separation: exclusivity is ignored here (handled by the
     cover tests at query time); it only affects which node stores the
     interval, never correctness.  Strict value comparisons guarantee the
     recursion's endpoint sets shrink. *)
  let hi_value = function Incl v | Excl v -> Some v | Neg_inf | Pos_inf -> None
  let lo_value = function Incl v | Excl v -> Some v | Neg_inf | Pos_inf -> None

  let strictly_left iv center =
    match hi_value iv.hi with Some v -> Key.compare v center < 0 | None -> false

  let strictly_right iv center =
    match lo_value iv.lo with Some v -> Key.compare v center > 0 | None -> false

  let rec build intervals =
    match intervals with
    | [] -> None
    | _ ->
      let endpoints =
        List.concat_map
          (fun iv ->
            (match lo_value iv.lo with Some v -> [ v ] | None -> [])
            @ (match hi_value iv.hi with Some v -> [ v ] | None -> []))
          intervals
      in
      let sorted = List.sort Key.compare endpoints in
      (* every interval here has at least one finite endpoint (the
         all-unbounded ones were extracted into [always]) *)
      let center = List.nth sorted (List.length sorted / 2) in
      let lefts = List.filter (fun iv -> strictly_left iv center) intervals in
      let rights = List.filter (fun iv -> strictly_right iv center) intervals in
      let here =
        List.filter
          (fun iv -> (not (strictly_left iv center)) && not (strictly_right iv center))
          intervals
      in
      let by_lo = Array.of_list here in
      Array.sort (fun a b -> compare_lo a.lo b.lo) by_lo;
      let by_hi = Array.of_list here in
      Array.sort (fun a b -> compare_hi b.hi a.hi) by_hi;
      Some { center; here; by_lo; by_hi; left = build lefts; right = build rights }

  let rebuild t =
    if t.dirty then begin
      let unbounded, bounded =
        List.partition
          (fun iv -> iv.lo = Neg_inf && iv.hi = Pos_inf)
          (List.filter (fun iv -> not (is_empty_interval iv.lo iv.hi)) t.intervals)
      in
      t.always <- List.map (fun iv -> iv.value) unbounded;
      t.root <- build bounded;
      t.dirty <- false
    end

  let stab t q =
    rebuild t;
    let acc = ref t.always in
    let rec go = function
      | None -> ()
      | Some node ->
        let c = Key.compare q node.center in
        if c < 0 then begin
          (* here-items have hi_value >= center > q, so below_hi holds;
             scan ascending los until one no longer reaches q *)
          (try
             Array.iter
               (fun iv -> if above_lo iv.lo q then acc := iv.value :: !acc else raise Exit)
               node.by_lo
           with Exit -> ());
          go node.left
        end
        else if c > 0 then begin
          (try
             Array.iter
               (fun iv -> if below_hi iv.hi q then acc := iv.value :: !acc else raise Exit)
               node.by_hi
           with Exit -> ());
          go node.right
        end
        else
          List.iter
            (fun iv -> if covers ~lo:iv.lo ~hi:iv.hi q then acc := iv.value :: !acc)
            node.here
    in
    go t.root;
    !acc
end
