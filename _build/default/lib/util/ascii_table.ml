type align = Left | Right

type t = {
  header : string list;
  aligns : align list;
  mutable rows : string list list; (* reversed *)
}

let normalize_aligns aligns width =
  let rec take n = function
    | _ when n = 0 -> []
    | [] -> Right :: take (n - 1) []
    | a :: rest -> a :: take (n - 1) rest
  in
  take width aligns

let create ?(aligns = []) ~header () =
  { header; aligns = normalize_aligns aligns (List.length header); rows = [] }

let add_row t cells =
  let width = List.length t.header in
  let n = List.length cells in
  if n > width then invalid_arg "Ascii_table.add_row: too many cells";
  let padded = cells @ List.init (width - n) (fun _ -> "") in
  t.rows <- padded :: t.rows

let format_float decimals x =
  if Float.is_nan x then "-" else Printf.sprintf "%.*f" decimals x

let add_float_row ?(decimals = 2) t label xs =
  add_row t (label :: List.map (format_float decimals) xs)

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else begin
    let fill = String.make (width - n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s
  end

let render t =
  let rows = List.rev t.rows in
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left
          (fun acc row -> max acc (String.length (List.nth row i)))
          (String.length h) rows)
      t.header
  in
  let render_line cells =
    List.map2 (fun (w, a) c -> pad a w c) (List.combine widths t.aligns) cells
    |> String.concat "  "
  in
  let sep = List.map (fun w -> String.make w '-') widths |> String.concat "  " in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (render_line t.header);
  Buffer.add_char buf '\n';
  Buffer.add_string buf sep;
  List.iter
    (fun row ->
      Buffer.add_char buf '\n';
      Buffer.add_string buf (render_line row))
    rows;
  Buffer.contents buf

let print t = print_endline (render t)
