type t = {
  z : float option; (* None = uniform *)
  n : int;
  hot_count : int;
}

let create ~z ~n =
  if not (z > 0.0 && z < 1.0) then invalid_arg "Locality.create: z must be in (0,1)";
  if n < 1 then invalid_arg "Locality.create: n must be >= 1";
  let hot_count = max 1 (int_of_float (Float.round (z *. float_of_int n))) in
  { z = Some z; n; hot_count = min hot_count n }

let uniform ~n =
  if n < 1 then invalid_arg "Locality.uniform: n must be >= 1";
  { z = None; n; hot_count = n }

let n t = t.n
let hot_count t = t.hot_count

let sample t prng =
  match t.z with
  | None -> Prng.int prng t.n
  | Some z ->
    if Prng.float prng < 1.0 -. z then Prng.int prng t.hot_count
    else if t.n = t.hot_count then Prng.int prng t.n
    else t.hot_count + Prng.int prng (t.n - t.hot_count)

let access_probability t i =
  if i < 0 || i >= t.n then invalid_arg "Locality.access_probability";
  match t.z with
  | None -> 1.0 /. float_of_int t.n
  | Some z ->
    if i < t.hot_count then (1.0 -. z) /. float_of_int t.hot_count
    else z /. float_of_int (t.n - t.hot_count)

let expected_updates_between_accesses t ~hot ~updates_per_query =
  let nf = float_of_int t.n in
  match t.z with
  | None -> nf *. updates_per_query
  | Some z ->
    let ratio = if hot then z /. (1.0 -. z) else (1.0 -. z) /. z in
    nf *. ratio *. updates_per_query
