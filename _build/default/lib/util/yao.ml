let upper_bound_m = 2.0

(* log C(n, k), computed as a sum of logs: O(k) but k is at most a record
   count, and the exact form is only used in tests and ablation benches. *)
let log_choose n k =
  if k < 0 || k > n then invalid_arg "Yao.log_choose"
  else begin
    let k = min k (n - k) in
    let acc = ref 0.0 in
    for i = 1 to k do
      acc := !acc +. log (float_of_int (n - k + i)) -. log (float_of_int i)
    done;
    !acc
  end

let exact ~n ~m ~k =
  if m <= 0 || n < m || k < 0 || k > n then invalid_arg "Yao.exact";
  if k = 0 then 0.0
  else begin
    let per_block = n / m in
    let remaining = n - per_block in
    if k > remaining then float_of_int m
    else
      let log_ratio = log_choose remaining k -. log_choose n k in
      float_of_int m *. (1.0 -. exp log_ratio)
  end

let cardenas ~m ~k =
  if m <= 0.0 then invalid_arg "Yao.cardenas";
  m *. (1.0 -. ((1.0 -. (1.0 /. m)) ** k))

let paper ~n ~m ~k =
  ignore n;
  if k <= 1.0 then max 0.0 k
  else if m < 1.0 then 1.0
  else if m < upper_bound_m then Float.min k m
  else cardenas ~m ~k
