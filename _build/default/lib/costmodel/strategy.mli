(** The four query-processing strategies the paper compares. *)

type t =
  | Always_recompute
  | Cache_invalidate
  | Update_cache_avm  (** Update Cache via non-shared algebraic maintenance *)
  | Update_cache_rvm  (** Update Cache via shared Rete maintenance *)

val all : t list
val name : t -> string
val short_name : t -> string
(** Two/three-letter tags: AR, CI, AVM, RVM. *)

val of_string : string -> t option
val pp : Format.formatter -> t -> unit
