type t = {
  n : float;
  s : float;
  block_bytes : float;
  d : float;
  k : float;
  l : float;
  q : float;
  f : float;
  f2 : float;
  f_r2 : float;
  f_r3 : float;
  c1 : float;
  c2 : float;
  c3 : float;
  c_inval : float;
  n1 : float;
  n2 : float;
  sf : float;
  z : float;
}

let default =
  {
    n = 100_000.0;
    s = 100.0;
    block_bytes = 4_000.0;
    d = 20.0;
    k = 100.0;
    l = 25.0;
    q = 100.0;
    f = 0.001;
    f2 = 0.1;
    f_r2 = 0.1;
    f_r3 = 0.1;
    c1 = 1.0;
    c2 = 30.0;
    c3 = 1.0;
    c_inval = 0.0;
    n1 = 100.0;
    n2 = 100.0;
    sf = 0.5;
    z = 0.5;
  }

let blocks t = t.n *. t.s /. t.block_bytes
let updates_per_query t = t.k /. t.q
let update_probability t = t.k /. (t.k +. t.q)

let with_update_probability t p =
  if p < 0.0 || p >= 1.0 then invalid_arg "Params.with_update_probability";
  { t with k = t.q *. p /. (1.0 -. p) }

let f_star t = t.f *. t.f2
let total_procs t = t.n1 +. t.n2

let proc_size_pages t =
  let b = blocks t in
  ((t.n1 *. Float.ceil (t.f *. b)) +. (t.n2 *. Float.ceil (f_star t *. b))) /. total_procs t

let btree_height t =
  let fanout = t.block_bytes /. t.d in
  let entries = Float.max (t.f *. t.n) 2.0 in
  Float.max 1.0 (Float.ceil (log entries /. log fanout))

let yao _t ~n ~m ~k = Dbproc_util.Yao.paper ~n ~m ~k

let to_rows t =
  let fmt = Printf.sprintf "%g" in
  [
    ("N", fmt t.n);
    ("S", fmt t.s);
    ("B", fmt t.block_bytes);
    ("d", fmt t.d);
    ("b = N*S/B", fmt (blocks t));
    ("k", fmt t.k);
    ("l", fmt t.l);
    ("q", fmt t.q);
    ("u = k*l/q", fmt (updates_per_query t *. t.l));
    ("P = k/(k+q)", fmt (update_probability t));
    ("f", fmt t.f);
    ("f2", fmt t.f2);
    ("f_R2", fmt t.f_r2);
    ("f_R3", fmt t.f_r3);
    ("C1", fmt t.c1);
    ("C2", fmt t.c2);
    ("C3", fmt t.c3);
    ("C_inval", fmt t.c_inval);
    ("N1", fmt t.n1);
    ("N2", fmt t.n2);
    ("SF", fmt t.sf);
    ("Z", fmt t.z);
  ]

let pp ppf t =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
    (fun ppf (name, value) -> Format.fprintf ppf "%s=%s" name value)
    ppf (to_rows t)
