(** The paper's evaluation figures as executable experiment definitions.

    Each figure declares its parameter deltas from the Figure-2 defaults
    and produces either a data series (cost vs. a swept parameter, one
    column per strategy), a region map over (f, P), or a static table.
    Identifiers follow the {e body text} numbering; the scanned appendix
    captions are shifted by one (see EXPERIMENTS.md). *)

type output =
  | Series of {
      x_label : string;
      y_label : string;
      columns : string list;  (** series names *)
      rows : (float * float list) list;  (** x, one y per column *)
    }
  | Region of {
      x_label : string;
      y_label : string;
      rendered : string;  (** ASCII region map *)
      legend : string;
    }
  | Table of { header : string list; rows : string list list }

type t = {
  id : string;  (** e.g. "fig5" *)
  title : string;
  expectation : string;  (** what the paper's plot shows, for eyeballing *)
  params : Params.t;  (** base parameters of the experiment *)
  model : Model.which;
  output : unit -> output;
}

val all : t list
(** Every table and figure of the evaluation, in paper order. *)

val find : string -> t option

val render : t -> string
(** Title, expectation, data table and (for series) an ASCII plot. *)

val p_sweep : float list
(** The update-probability grid used by the cost-vs-P figures. *)

val sf_sweep : float list

val crossover_sf : Model.which -> Params.t -> float option
(** Smallest SF (on a fine grid) where RVM becomes no more expensive than
    AVM — the paper reports ≈ 0.47 for model 2. *)
