type t = Always_recompute | Cache_invalidate | Update_cache_avm | Update_cache_rvm

let all = [ Always_recompute; Cache_invalidate; Update_cache_avm; Update_cache_rvm ]

let name = function
  | Always_recompute -> "always-recompute"
  | Cache_invalidate -> "cache-and-invalidate"
  | Update_cache_avm -> "update-cache (AVM)"
  | Update_cache_rvm -> "update-cache (RVM)"

let short_name = function
  | Always_recompute -> "AR"
  | Cache_invalidate -> "CI"
  | Update_cache_avm -> "AVM"
  | Update_cache_rvm -> "RVM"

let of_string s =
  match String.lowercase_ascii s with
  | "ar" | "always-recompute" | "recompute" -> Some Always_recompute
  | "ci" | "cache-and-invalidate" | "cache-invalidate" | "caching" -> Some Cache_invalidate
  | "avm" | "update-cache-avm" -> Some Update_cache_avm
  | "rvm" | "update-cache-rvm" -> Some Update_cache_rvm
  | _ -> None

let pp ppf t = Format.pp_print_string ppf (name t)
