lib/costmodel/strategy.ml: Format String
