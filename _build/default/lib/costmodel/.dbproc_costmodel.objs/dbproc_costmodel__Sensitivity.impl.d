lib/costmodel/sensitivity.ml: Float List Model Params Strategy
