lib/costmodel/regions.ml: List Model Params Strategy
