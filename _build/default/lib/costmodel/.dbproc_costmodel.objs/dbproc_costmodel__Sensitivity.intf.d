lib/costmodel/sensitivity.mli: Model Params Strategy
