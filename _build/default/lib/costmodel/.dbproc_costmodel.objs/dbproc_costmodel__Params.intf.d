lib/costmodel/params.mli: Format
