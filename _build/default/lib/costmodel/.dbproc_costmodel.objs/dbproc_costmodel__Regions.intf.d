lib/costmodel/regions.mli: Model Params Strategy
