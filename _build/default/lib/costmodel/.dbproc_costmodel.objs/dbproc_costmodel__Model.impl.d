lib/costmodel/model.ml: Dbproc_util Float List Params Strategy
