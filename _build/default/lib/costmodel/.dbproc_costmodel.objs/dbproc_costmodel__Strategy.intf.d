lib/costmodel/strategy.mli: Format
