lib/costmodel/model.mli: Params Strategy
