lib/costmodel/figures.mli: Model Params
