lib/costmodel/params.ml: Dbproc_util Float Format Printf
