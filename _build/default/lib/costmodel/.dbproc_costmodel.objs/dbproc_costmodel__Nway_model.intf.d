lib/costmodel/nway_model.mli: Params Strategy
