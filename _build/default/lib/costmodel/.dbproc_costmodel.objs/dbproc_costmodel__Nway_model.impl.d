lib/costmodel/nway_model.ml: Dbproc_util Float Model Params Strategy
