lib/costmodel/figures.ml: Buffer Dbproc_util List Model Params Printf Regions Strategy
