(** The cost model generalized to join chains of any length.

    The paper analyzes 2-way (model 1) and 3-way (model 2) procedures;
    its Section 8 reasons qualitatively about longer chains ("joins of
    three or more relations").  This module extends the formulas to a
    chain of [m] relations matching {!Dbproc_workload.Nway}'s database:
    C1 carries the f-selective B-tree restriction, C2 the f2 restriction,
    C3..Cm are unrestricted hash-clustered lookups, one expected match per
    probe, updates hit C1 only.

    One deliberate divergence from the paper: its model-2 [Y6] probes R3
    with [f·N] tuples, ignoring that [C_f2] already filtered the stream to
    [f·f2·N]; this model uses the filtered count (what the engine's plan
    actually does).  At [f2 = 1] the two readings coincide, and the
    chain-2 and chain-3 specializations equal {!Model}'s totals (pinned by
    tests). *)

val cost : Params.t -> chain_length:int -> Strategy.t -> float
(** Expected ms per procedure access for a population of [Params.n1] P1
    procedures and [Params.n2] chain-[m] procedures.
    @raise Invalid_argument if [chain_length < 1]. *)

val maintenance_per_update : Params.t -> chain_length:int -> Strategy.t -> float
(** The update-side component alone (0 for Always Recompute; the
    amortized invalidation recording for Cache and Invalidate), per
    update transaction — directly comparable to
    {!Dbproc_workload.Nway.result.maintenance_ms_per_update}. *)
