(** Parameter sensitivity of the cost model.

    The paper's analysis turns on which parameters move the strategy
    costs: update probability, object size, sharing factor, locality, the
    invalidation cost.  This module quantifies it — the elasticity of each
    strategy's cost with respect to each parameter at a given operating
    point:

    {v elasticity = (dCost / Cost) / (dParam / Param) v}

    computed by central finite differences with a relative step.  An
    elasticity of 1 means cost scales linearly with the parameter; 0 means
    the strategy is insensitive (e.g. AR vs. SF); large values flag the
    danger zones the paper warns about (UC vs. k at high P). *)

type axis = {
  name : string;
  get : Params.t -> float;
  set : Params.t -> float -> Params.t;
}

val axes : axis list
(** The swept parameters: k, l, f, f2, SF, Z, C_inval, N1, N2, N. *)

val elasticity :
  ?rel_step:float -> Model.which -> Params.t -> Strategy.t -> axis -> float
(** Central-difference elasticity at the operating point ([rel_step]
    defaults to 0.05).  Returns 0 when the parameter is 0 at the point
    (elasticity undefined; the parameter has no proportional meaning). *)

val table :
  ?rel_step:float -> Model.which -> Params.t -> (string * (Strategy.t * float) list) list
(** Elasticity of every strategy along every axis. *)
