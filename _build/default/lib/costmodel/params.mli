(** The paper's cost-model parameters (Figure 2) and derived quantities.

    All costs are in milliseconds; sizes are real-valued because the model
    works with expectations. *)

type t = {
  n : float;  (** N: tuples in R1 *)
  s : float;  (** S: bytes per tuple *)
  block_bytes : float;  (** B: bytes per block *)
  d : float;  (** d: bytes per B+-tree index record *)
  k : float;  (** k: update transactions *)
  l : float;  (** l: tuples modified per update transaction *)
  q : float;  (** q: procedure accesses *)
  f : float;  (** selectivity of [C_f(R1)] *)
  f2 : float;  (** selectivity of [C_f2(R2)] *)
  f_r2 : float;  (** |R2| / N *)
  f_r3 : float;  (** |R3| / N *)
  c1 : float;  (** CPU ms to screen a record against a predicate *)
  c2 : float;  (** ms per disk page read or write *)
  c3 : float;  (** ms per tuple per transaction for A_net/D_net upkeep *)
  c_inval : float;  (** ms to record one invalidation *)
  n1 : float;  (** number of P1-type procedures *)
  n2 : float;  (** number of P2-type procedures *)
  sf : float;  (** sharing factor *)
  z : float;  (** locality: fraction [z] of procedures gets [1-z] of refs *)
}

val default : t
(** Figure 2 defaults: N = 100,000; S = 100; B = 4,000; d = 20; k = 100;
    l = 25; q = 100; f = 0.001; f2 = 0.1; f_r2 = f_r3 = 0.1; C1 = 1;
    C2 = 30; C3 = 1; C_inval = 0; N1 = N2 = 100; SF = 0.5; Z = 0.5
    (uniform references — the paper's figures not about locality use no
    skew). *)

(** {2 Derived quantities} *)

val blocks : t -> float
(** b = N·S / B, the pages of R1 (2,500 with defaults). *)

val updates_per_query : t -> float
(** k / q. *)

val update_probability : t -> float
(** P = k / (k + q). *)

val with_update_probability : t -> float -> t
(** Set P by adjusting [k], holding [q] fixed.  Requires [0 <= p < 1]. *)

val f_star : t -> float
(** f* = f·f2: total restriction selectivity of a P2 procedure. *)

val total_procs : t -> float
(** N1 + N2. *)

val proc_size_pages : t -> float
(** Average stored-procedure size in pages:
    (N1·⌈f·b⌉ + N2·⌈f*·b⌉) / (N1+N2). *)

val btree_height : t -> float
(** H1 = ⌈log_(B/d) (f·N)⌉ (at least 1), the paper's descent depth. *)

val yao : t -> n:float -> m:float -> k:float -> float
(** Appendix-A page-touch approximation with this parameter set (the
    function itself does not depend on [t]; kept here so call sites read
    like the paper's [y(n, m, k)]). *)

val pp : Format.formatter -> t -> unit
val to_rows : t -> (string * string) list
(** Parameter table rows (Figure 2) for the bench harness. *)
