type axis = {
  name : string;
  get : Params.t -> float;
  set : Params.t -> float -> Params.t;
}

let axes =
  [
    { name = "k"; get = (fun p -> p.Params.k); set = (fun p v -> { p with Params.k = v }) };
    { name = "l"; get = (fun p -> p.Params.l); set = (fun p v -> { p with Params.l = v }) };
    { name = "f"; get = (fun p -> p.Params.f); set = (fun p v -> { p with Params.f = v }) };
    { name = "f2"; get = (fun p -> p.Params.f2); set = (fun p v -> { p with Params.f2 = v }) };
    { name = "SF"; get = (fun p -> p.Params.sf); set = (fun p v -> { p with Params.sf = v }) };
    { name = "Z"; get = (fun p -> p.Params.z); set = (fun p v -> { p with Params.z = v }) };
    {
      name = "C_inval";
      get = (fun p -> p.Params.c_inval);
      set = (fun p v -> { p with Params.c_inval = v });
    };
    { name = "N1"; get = (fun p -> p.Params.n1); set = (fun p v -> { p with Params.n1 = v }) };
    { name = "N2"; get = (fun p -> p.Params.n2); set = (fun p v -> { p with Params.n2 = v }) };
    { name = "N"; get = (fun p -> p.Params.n); set = (fun p v -> { p with Params.n = v }) };
  ]

let elasticity ?(rel_step = 0.05) which params strategy axis =
  let x = axis.get params in
  if x = 0.0 then 0.0
  else begin
    let h = rel_step *. Float.abs x in
    let cost v = Model.cost which (axis.set params v) strategy in
    let c0 = cost x in
    if c0 = 0.0 then 0.0
    else begin
      let dcost = (cost (x +. h) -. cost (x -. h)) /. (2.0 *. h) in
      dcost *. x /. c0
    end
  end

let table ?rel_step which params =
  List.map
    (fun axis ->
      ( axis.name,
        List.map (fun s -> (s, elasticity ?rel_step which params s axis)) Strategy.all ))
    axes
