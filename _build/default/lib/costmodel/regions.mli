(** "Who wins where" classification over the parameter space — the paper's
    Figures 12-15 and 19. *)

type winner_class = AR | CI | UC
(** The paper's region figures compare three algorithm classes, with UC
    represented by its cheaper variant. *)

val winner_class_char : winner_class -> char
(** 'R', 'C', 'U' — the marks used in region maps. *)

val best : Model.which -> Params.t -> Strategy.t
(** Cheapest of all four strategies (ties broken in {!Strategy.all}
    order). *)

val best_class : Model.which -> Params.t -> winner_class

val best_update_cache : Model.which -> Params.t -> Strategy.t
(** The cheaper Update Cache variant (AVM or RVM). *)

val ci_within_factor : Model.which -> Params.t -> factor:float -> bool
(** Whether Cache and Invalidate costs at most [factor] times the best
    Update Cache variant — the paper's "closeness" maps (Figures 14/15). *)

val classify_at : Model.which -> Params.t -> f:float -> p:float -> winner_class
(** {!best_class} with the object size and update probability overridden
    — one cell of a region map. *)
