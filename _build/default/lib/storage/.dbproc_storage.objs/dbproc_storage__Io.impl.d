lib/storage/io.ml: Cost Fun Hashtbl
