lib/storage/heap_file.ml: Array Format Hashtbl Io List
