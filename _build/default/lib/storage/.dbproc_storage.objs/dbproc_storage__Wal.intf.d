lib/storage/wal.mli: Io
