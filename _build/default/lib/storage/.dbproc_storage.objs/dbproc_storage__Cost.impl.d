lib/storage/cost.ml: Format Fun
