lib/storage/wal.ml: Io List Printf
