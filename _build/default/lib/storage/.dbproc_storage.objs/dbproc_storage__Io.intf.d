lib/storage/io.mli: Cost
