(** Recursive-descent parser for the command language (see {!Ast} for the
    grammar). *)

exception Parse_error of string

val parse_command : string -> Ast.command
(** Parse one command.
    @raise Parse_error on syntax errors (including trailing garbage).
    @raise Lexer.Lex_error on tokenization errors. *)

val parse_script : string -> Ast.command list
(** Parse a whole script: one command per line; blank lines and [--]
    comment lines are skipped.  Error messages carry line numbers. *)
