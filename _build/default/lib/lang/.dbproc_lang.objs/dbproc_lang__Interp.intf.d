lib/lang/interp.mli: Ast Dbproc_query
