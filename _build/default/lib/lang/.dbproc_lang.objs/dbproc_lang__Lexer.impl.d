lib/lang/lexer.ml: Buffer Format List String
