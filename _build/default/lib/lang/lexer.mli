(** Tokenizer for the command language.

    Identifiers are ASCII letters/digits/underscore starting with a
    letter; keywords are recognized case-insensitively by the parser, so
    the lexer only distinguishes token shapes.  Comments run from [--] to
    end of line. *)

type token =
  | IDENT of string
  | INT of int
  | FLOAT of float
  | STRING of string
  | LPAREN
  | RPAREN
  | COMMA
  | DOT
  | EQ  (** [=] *)
  | NE  (** [!=] *)
  | LT
  | LE
  | GT
  | GE

exception Lex_error of string
(** Raised on an unexpected character or an unterminated string; the
    message includes the offending position. *)

val tokenize : string -> token list
val pp_token : Format.formatter -> token -> unit
