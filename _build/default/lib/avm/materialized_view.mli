(** Algebraic (non-shared) differential view maintenance — the paper's AVM,
    after Blakeley et al. [BLT86].

    A materialized view keeps a stored copy of its defining query's result.
    After a transaction changes a base relation by inserting a set [a] and
    deleting a set [d], the identity

    {v V(A ∪ a − d, B) = V(A, B) ∪ V(a, B) − V(d, B) v}

    lets the stored copy be refreshed by evaluating the view only over the
    delta tuples: they are screened against the base restriction upstream
    (rule indexing), joined to the other base relations with the view's
    precompiled probe plan, and the resulting view-delta is applied to the
    stored copy touching each affected page once.

    Charges per {!apply_base_delta}: [C3] per delta tuple (A_net/D_net
    bookkeeping), join-probe page reads (the paper's [Y2]/[Y7]) and one
    read + one write per distinct stored page refreshed ([Y3]/[Y4]).
    In-place modifications are expressed as delete + insert, per the
    paper. *)

open Dbproc_relation
open Dbproc_query

type t

type policy =
  | Static  (** always apply the delta with the precompiled plan (the paper's statically optimized AVM) *)
  | Dynamic of float
      (** [Dynamic ratio]: at maintenance time, if the delta holds more
          than [ratio] times the stored tuple count, recompute and rewrite
          instead of maintaining incrementally — a minimal form of the
          dynamically optimized algorithm of [BLT86] that Section 8 asks
          about.  [Dynamic 1.0] switches when the delta outgrows the
          view. *)

val create : ?name:string -> ?policy:policy -> record_bytes:int -> View_def.t -> t
(** Compile the view's plan, allocate the stored copy ([record_bytes] per
    result tuple — the paper's [S]) and populate it from the current base
    contents without cost accounting.  [policy] defaults to {!Static}.

    @raise Planner.Unsupported_plan if the definition cannot be compiled. *)

val policy : t -> policy

val maintenance_recomputes : t -> int
(** How many maintenance calls the {!Dynamic} policy turned into full
    recomputations (always 0 under {!Static}). *)

val name : t -> string
val def : t -> View_def.t
val plan : t -> Plan.t

val cardinality : t -> int
val page_count : t -> int

val read : t -> Tuple.t list
(** Read the stored copy, charging one page read per stored page — the
    paper's [C_read]. *)

val apply_base_delta : t -> inserted:Tuple.t list -> deleted:Tuple.t list -> unit
(** Refresh after a transaction on the view's {e base} relation.  The
    tuple lists must already be screened against the base restriction
    (survivors of broken i-locks); screening cost is charged by the caller,
    which owns the rule index. *)

val apply_source_delta :
  t -> source_index:int -> inserted:Tuple.t list -> deleted:Tuple.t list -> unit
(** Refresh after a transaction on any of the view's sources
    ({!View_def.sources} order; index 0 is the base and equals
    {!apply_base_delta}).  For an inner source the algebraic identity
    still applies, but the non-shared algorithm has no precomputed prefix
    to probe: it {e evaluates the prefix join} (charged, with the stored
    plan), hash-joins it to the delta in memory (one [C1] per prefix tuple
    plus one per delta tuple), and pushes the matches through the
    remaining probes.  This is exactly the expense the paper's Section 8
    flags when discussing update frequency on different relations.

    The delta tuples must be survivors of the source's own restriction,
    and the transaction must touch only that source. *)

val recompute_refresh : t -> unit
(** Recompute from scratch (running the stored plan, charged) and rewrite
    the stored copy (one read + one write per page of the new value) —
    what Cache and Invalidate does on a miss. *)

val matches_recompute : t -> bool
(** Whether the stored copy equals a from-scratch recompute (multiset
    equality, no cost accounting) — the key correctness invariant,
    used by tests. *)
