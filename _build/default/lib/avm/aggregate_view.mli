(** Differentially-maintained aggregate procedures.

    The paper's introduction lists "aggregation and generalization" among
    the features database procedures support; this module maintains
    procedures of the form

    {v select group_attrs, COUNT, SUM x, MIN y, MAX z
   from <any view this library can maintain>
   group by group_attrs v}

    on top of the same differential machinery as
    {!Materialized_view}: the underlying view's delta is computed once per
    update and folded into a stored group table.

    COUNT and SUM fold in O(1) per delta tuple.  MIN/MAX absorb inserts in
    O(1); deleting the current extremum of a group re-derives it from the
    group's retained value multiset (kept in memory and charged [C3] per
    delta tuple, like the A_net/D_net sets).  Empty groups are removed.

    Result tuples are [group values ++ one value per aggregate]; group
    records live in a heap file so reads and refreshes charge pages like
    any other stored procedure value. *)

open Dbproc_relation
open Dbproc_query

type agg =
  | Count
  | Sum of int  (** attribute position in the underlying view's schema *)
  | Min of int
  | Max of int

val pp_agg : Format.formatter -> agg -> unit

type t

val create :
  ?name:string -> record_bytes:int -> group_by:int list -> aggs:agg list -> View_def.t -> t
(** Compile the underlying view's plan, compute the initial groups
    (setup, uncharged) and store them.  [group_by] and aggregate
    attributes are positions in {!View_def.schema}.  Sum/Min/Max
    attributes must be numeric for meaningful results.

    @raise Invalid_argument if [aggs] is empty. *)

val name : t -> string
val def : t -> View_def.t
val group_count : t -> int
val page_count : t -> int

val read : t -> Tuple.t list
(** The group table, one page read per stored page. *)

val find_group : t -> Value.t list -> Tuple.t option
(** Lookup one group's current row (charges the page holding it). *)

val apply_base_delta : t -> inserted:Tuple.t list -> deleted:Tuple.t list -> unit
(** Like {!Materialized_view.apply_base_delta}: the delta tuples are
    base-relation survivors; they are pushed through the view's probe
    chain and folded into the groups, touching each affected group page
    once. *)

val matches_recompute : t -> bool
(** Stored groups equal an uncharged from-scratch recompute. *)
