lib/avm/materialized_view.mli: Dbproc_query Dbproc_relation Plan Tuple View_def
