lib/avm/materialized_view.ml: Cost Dbproc_query Dbproc_relation Dbproc_storage Executor Hashtbl Heap_file Io List Option Plan Planner Predicate Relation Tuple View_def
