lib/avm/aggregate_view.ml: Array Cost Dbproc_query Dbproc_relation Dbproc_storage Executor Format Hashtbl Heap_file Io List Option Plan Planner Relation Tuple Value View_def
