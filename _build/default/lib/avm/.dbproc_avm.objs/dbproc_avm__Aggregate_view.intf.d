lib/avm/aggregate_view.mli: Dbproc_query Dbproc_relation Format Tuple Value View_def
