open Dbproc_storage
open Dbproc_relation
open Dbproc_query

type agg = Count | Sum of int | Min of int | Max of int

let pp_agg ppf = function
  | Count -> Format.pp_print_string ppf "count(*)"
  | Sum a -> Format.fprintf ppf "sum(.%d)" a
  | Min a -> Format.fprintf ppf "min(.%d)" a
  | Max a -> Format.fprintf ppf "max(.%d)" a

module Key_tbl = Hashtbl.Make (struct
  type t = Value.t list

  let equal a b = List.length a = List.length b && List.for_all2 Value.equal a b
  let hash = Hashtbl.hash
end)

module Value_tbl = Hashtbl.Make (struct
  type t = Value.t

  let equal = Value.equal
  let hash = Value.hash
end)

type group_state = {
  mutable count : int;
  sums : float array; (* slot per aggregate; unused slots stay 0 *)
  multisets : int Value_tbl.t array; (* value multiset per Min/Max slot *)
}

type t = {
  name : string;
  def : View_def.t;
  plan : Plan.t;
  group_by : int list;
  aggs : agg list;
  store : Tuple.t Heap_file.t;
  groups : group_state Key_tbl.t;
  rids : Heap_file.rid Key_tbl.t;
}

let io t = Relation.io t.def.View_def.base.rel

let numeric = function
  | Value.Int i -> float_of_int i
  | Value.Float f -> f
  | Value.Str _ -> invalid_arg "Aggregate_view: SUM over a string attribute"

let fresh_state aggs =
  {
    count = 0;
    sums = Array.make (List.length aggs) 0.0;
    multisets = Array.init (List.length aggs) (fun _ -> Value_tbl.create 8);
  }

let fold_tuple t state sign tuple =
  state.count <- state.count + sign;
  List.iteri
    (fun i agg ->
      match agg with
      | Count -> ()
      | Sum attr ->
        state.sums.(i) <- state.sums.(i) +. (float_of_int sign *. numeric (Tuple.get tuple attr))
      | Min attr | Max attr ->
        let v = Tuple.get tuple attr in
        let ms = state.multisets.(i) in
        let c = Option.value (Value_tbl.find_opt ms v) ~default:0 in
        let c' = c + sign in
        if c' < 0 then
          invalid_arg "Aggregate_view: delete of a value the group never held"
        else if c' = 0 then Value_tbl.remove ms v
        else Value_tbl.replace ms v c')
    t.aggs

let extremum ~is_min ms =
  Value_tbl.fold
    (fun v _ acc ->
      match acc with
      | None -> Some v
      | Some best ->
        let c = Value.compare v best in
        if (is_min && c < 0) || ((not is_min) && c > 0) then Some v else acc)
    ms None

let emit t key state =
  let agg_values =
    List.mapi
      (fun i agg ->
        match agg with
        | Count -> Value.Int state.count
        | Sum _ -> Value.Float state.sums.(i)
        | Min _ -> (
          match extremum ~is_min:true state.multisets.(i) with
          | Some v -> v
          | None -> Value.Int 0 (* unreachable: empty groups are removed *))
        | Max _ -> (
          match extremum ~is_min:false state.multisets.(i) with
          | Some v -> v
          | None -> Value.Int 0))
      t.aggs
  in
  Tuple.create (key @ agg_values)

let key_of t tuple = List.map (Tuple.get tuple) t.group_by

(* Fold view-level delta tuples into the group states, returning the set
   of affected keys. *)
let fold_delta t ~view_inserts ~view_deletes =
  let affected = Key_tbl.create 8 in
  let touch sign tuple =
    let key = key_of t tuple in
    let state =
      match Key_tbl.find_opt t.groups key with
      | Some s -> s
      | None ->
        let s = fresh_state t.aggs in
        Key_tbl.replace t.groups key s;
        s
    in
    fold_tuple t state sign tuple;
    if not (Key_tbl.mem affected key) then Key_tbl.replace affected key ()
  in
  List.iter (touch (-1)) view_deletes;
  List.iter (touch 1) view_inserts;
  Key_tbl.fold (fun key () acc -> key :: acc) affected []

let refresh_groups t keys =
  let ops =
    List.concat_map
      (fun key ->
        let state = Key_tbl.find_opt t.groups key in
        let rid = Key_tbl.find_opt t.rids key in
        match (state, rid) with
        | Some s, _ when s.count = 0 -> (
          Key_tbl.remove t.groups key;
          match rid with
          | Some r ->
            Key_tbl.remove t.rids key;
            [ Heap_file.Delete r ]
          | None -> [])
        | Some s, Some r -> [ Heap_file.Update (r, emit t key s) ]
        | Some s, None -> [ Heap_file.Insert (emit t key s) ]
        | None, _ -> [])
      keys
  in
  let inserted_keys =
    List.filter
      (fun key ->
        match Key_tbl.find_opt t.groups key with
        | Some _ -> not (Key_tbl.mem t.rids key)
        | None -> false)
      keys
  in
  let new_rids = Heap_file.apply_batch t.store ops in
  List.iter2 (fun key rid -> Key_tbl.replace t.rids key rid) inserted_keys new_rids

let populate t tuples =
  Heap_file.clear t.store;
  Key_tbl.reset t.groups;
  Key_tbl.reset t.rids;
  List.iter
    (fun tuple ->
      let key = key_of t tuple in
      let state =
        match Key_tbl.find_opt t.groups key with
        | Some s -> s
        | None ->
          let s = fresh_state t.aggs in
          Key_tbl.replace t.groups key s;
          s
      in
      fold_tuple t state 1 tuple)
    tuples;
  Key_tbl.iter
    (fun key state ->
      let rid = Heap_file.append t.store (emit t key state) in
      Key_tbl.replace t.rids key rid)
    t.groups

let create ?name ~record_bytes ~group_by ~aggs (def : View_def.t) =
  if aggs = [] then invalid_arg "Aggregate_view.create: no aggregates";
  let plan = Planner.compile def in
  let io = Relation.io def.base.rel in
  let t =
    {
      name = Option.value name ~default:(def.View_def.name ^ ".agg");
      def;
      plan;
      group_by;
      aggs;
      store = Heap_file.create ~io ~record_bytes ();
      groups = Key_tbl.create 32;
      rids = Key_tbl.create 32;
    }
  in
  Cost.with_disabled (Io.cost io) (fun () -> populate t (Executor.run plan));
  t

let name t = t.name
let def t = t.def
let group_count t = Key_tbl.length t.groups
let page_count t = Heap_file.page_count t.store
let read t = Heap_file.read_all t.store

let find_group t key =
  match Key_tbl.find_opt t.rids key with
  | Some rid -> Some (Heap_file.get t.store rid)
  | None -> None

let apply_base_delta t ~inserted ~deleted =
  let cost = Io.cost (io t) in
  Cost.delta_op cost ~count:(List.length inserted + List.length deleted);
  let view_inserts = Executor.probe_chain ~probes:t.plan.Plan.probes ~outer:inserted in
  let view_deletes = Executor.probe_chain ~probes:t.plan.Plan.probes ~outer:deleted in
  let affected = fold_delta t ~view_inserts ~view_deletes in
  refresh_groups t affected

let matches_recompute t =
  Cost.with_disabled
    (Io.cost (io t))
    (fun () ->
      let fresh =
        {
          t with
          store = Heap_file.create ~io:(io t) ~record_bytes:(Heap_file.record_bytes t.store) ();
          groups = Key_tbl.create 32;
          rids = Key_tbl.create 32;
        }
      in
      populate fresh (Executor.run t.plan);
      let sorted h = List.sort Tuple.compare (Heap_file.read_all h) in
      let a = sorted t.store and b = sorted fresh.store in
      List.length a = List.length b && List.for_all2 Tuple.equal a b)
