lib/proc/result_cache.mli: Dbproc_query Dbproc_relation Plan Tuple View_def
