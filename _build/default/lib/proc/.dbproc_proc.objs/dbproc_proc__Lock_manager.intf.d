lib/proc/lock_manager.mli: Dbproc_index Dbproc_relation Predicate Value
