lib/proc/manager.mli: Dbproc_query Dbproc_relation Dbproc_storage Relation Tuple View_def
