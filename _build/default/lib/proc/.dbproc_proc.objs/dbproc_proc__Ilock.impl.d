lib/proc/ilock.ml: Btree Cost Dbproc_index Dbproc_query Dbproc_relation Dbproc_storage Dbproc_util Hashtbl List Predicate Tuple Value
