lib/proc/adaptive.ml: Cost Dbproc_avm Dbproc_query Dbproc_relation Dbproc_storage Executor Ilock Io List Plan Planner Printf Relation Result_cache Tuple View_def
