lib/proc/ilock.mli: Dbproc_relation Dbproc_storage Predicate Tuple
