lib/proc/result_cache.ml: Cost Dbproc_query Dbproc_relation Dbproc_storage Executor Heap_file Io List Option Plan Planner Relation Tuple View_def
