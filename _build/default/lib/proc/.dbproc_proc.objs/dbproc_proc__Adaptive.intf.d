lib/proc/adaptive.mli: Dbproc_query Dbproc_relation Dbproc_storage Relation Tuple View_def
