lib/proc/inval_table.ml: Array Dbproc_storage Format Io List Option Printf Wal
