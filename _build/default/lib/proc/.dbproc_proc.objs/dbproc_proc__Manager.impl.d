lib/proc/manager.ml: Cost Dbproc_avm Dbproc_query Dbproc_relation Dbproc_rete Dbproc_storage Executor Ilock Io List Option Plan Planner Printf Relation Result_cache Tuple View_def
