lib/proc/lock_manager.ml: Btree Dbproc_index Dbproc_query Dbproc_relation Hashtbl List Value
