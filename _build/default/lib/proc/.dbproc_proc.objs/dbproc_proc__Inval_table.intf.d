lib/proc/inval_table.mli: Dbproc_storage Format
