open Dbproc_relation
open Dbproc_index

type region =
  | Whole of string
  | Interval of {
      rel : string;
      attr : int;
      lo : Value.t Btree.bound;
      hi : Value.t Btree.bound;
    }

let point ~rel ~attr v = Interval { rel; attr; lo = Btree.Inclusive v; hi = Btree.Inclusive v }

let region_of_restriction ~rel restriction =
  match Dbproc_query.Planner.interval_of_restriction restriction with
  | Some (attr, lo, hi) -> Interval { rel; attr; lo; hi }
  | None -> Whole rel

let region_rel = function Whole rel -> rel | Interval { rel; _ } -> rel

(* hi strictly below lo, i.e. the intervals cannot share a point *)
let hi_before_lo hi lo =
  match (hi, lo) with
  | Btree.Unbounded, _ | _, Btree.Unbounded -> false
  | (Btree.Inclusive a | Btree.Exclusive a), (Btree.Inclusive b | Btree.Exclusive b) -> (
    match Value.compare a b with
    | c when c < 0 -> true
    | 0 -> ( match (hi, lo) with Btree.Inclusive _, Btree.Inclusive _ -> false | _ -> true)
    | _ -> false)

let regions_overlap a b =
  region_rel a = region_rel b
  &&
  match (a, b) with
  | Whole _, _ | _, Whole _ -> true
  | Interval ia, Interval ib ->
    (* different attributes of one relation: an index interval on one
       attribute still covers (parts of) the same tuples — treat as
       overlapping, which is the conservative and correct reading of an
       index-interval lock guarding a stored object *)
    ia.attr <> ib.attr
    || not (hi_before_lo ia.hi ib.lo || hi_before_lo ib.hi ia.lo)

type txn = int

type held = { txn : txn; mode : [ `S | `X ]; region : region }

type ilock = { owner : int; tag : int; iregion : region; mutable broken : bool }

type broken = { owner : int; tag : int }

type t = {
  mutable next_txn : int;
  mutable live : txn list;
  mutable held : held list;
  mutable ilocks : ilock list;
  pending_broken : (txn, broken list ref) Hashtbl.t;
}

let create () =
  { next_txn = 0; live = []; held = []; ilocks = []; pending_broken = Hashtbl.create 8 }

let begin_txn t =
  let txn = t.next_txn in
  t.next_txn <- txn + 1;
  t.live <- txn :: t.live;
  Hashtbl.replace t.pending_broken txn (ref []);
  txn

let check_live t txn =
  if not (List.mem txn t.live) then invalid_arg "Lock_manager: transaction not live"

let compatible m1 m2 = match (m1, m2) with `S, `S -> true | _ -> false

let acquire t txn ~mode region =
  check_live t txn;
  let conflicts =
    t.held
    |> List.filter (fun h ->
           h.txn <> txn
           && (not (compatible h.mode mode))
           && regions_overlap h.region region)
    |> List.map (fun h -> h.txn)
    |> List.sort_uniq compare
  in
  if conflicts <> [] then `Would_block conflicts
  else begin
    t.held <- { txn; mode; region } :: t.held;
    (if mode = `X then begin
       let cell = Hashtbl.find t.pending_broken txn in
       List.iter
         (fun (il : ilock) ->
           if (not il.broken) && regions_overlap il.iregion region then begin
             il.broken <- true;
             cell := { owner = il.owner; tag = il.tag } :: !cell
           end)
         t.ilocks
     end);
    `Granted
  end

let release t txn =
  t.live <- List.filter (( <> ) txn) t.live;
  t.held <- List.filter (fun h -> h.txn <> txn) t.held;
  (* broken i-locks are dropped: their owners must recompute and
     re-register, like an invalidated cache entry *)
  t.ilocks <- List.filter (fun (il : ilock) -> not il.broken) t.ilocks

let commit t txn =
  check_live t txn;
  let broken =
    match Hashtbl.find_opt t.pending_broken txn with Some cell -> List.rev !cell | None -> []
  in
  Hashtbl.remove t.pending_broken txn;
  release t txn;
  List.sort_uniq compare broken

let abort t txn =
  check_live t txn;
  Hashtbl.remove t.pending_broken txn;
  release t txn

let set_ilock t ~owner ?(tag = 0) region =
  t.ilocks <- { owner; tag; iregion = region; broken = false } :: t.ilocks

let drop_ilocks t ~owner =
  t.ilocks <- List.filter (fun (il : ilock) -> il.owner <> owner) t.ilocks

let ilock_count t = List.length t.ilocks
let live_txn_count t = List.length t.live
