(** Adaptive strategy selection per procedure — the paper's Section 8
    decision problem ("how to decide whether or not to maintain a cached
    copy of a given object") made executable.

    Each procedure starts under Cache and Invalidate (the paper's
    recommended safe second step) and keeps two counters per decision
    window: accesses and conflicts (update transactions that broke its
    i-locks).  At the end of a window the observed conflict ratio
    [p̂ = conflicts / (conflicts + accesses)] and the stored object size
    drive the paper's conclusions:

    - [p̂ ≥ high] (default 0.7): Update Cache degrades sharply and CI only
      wastes write-backs → switch to {b Always Recompute};
    - [p̂ ≤ low] (default 0.4) and the object spans more than
      [small_pages]: incremental refresh beats recomputation → switch to
      {b Update Cache} (AVM);
    - otherwise: {b Cache and Invalidate}.

    Switching materializes or drops state at full charge (building a
    materialized view costs one recomputation; demoting is free).  The
    paper notes the cost of a wrong Update Cache decision is the largest —
    hysteresis (the low/high gap) keeps the selector from flapping. *)

open Dbproc_relation
open Dbproc_query

type mode = Ar | Ci | Uc

val mode_name : mode -> string

type config = {
  window : int;  (** operations (accesses + conflicts) per decision *)
  high_conflict : float;  (** p̂ at or above which AR is chosen *)
  low_conflict : float;  (** p̂ at or below which UC becomes eligible *)
  small_pages : int;  (** objects at most this many pages stay with CI *)
}

val default_config : config

type t

val create : ?config:config -> io:Dbproc_storage.Io.t -> record_bytes:int -> unit -> t

val register : t -> View_def.t -> int
val procedure_count : t -> int

val mode_of : t -> int -> mode

val access : t -> int -> Tuple.t list
(** Serve an access under the procedure's current mode, with full cost
    accounting; may trigger a mode decision at window boundaries. *)

val on_update : t -> rel:Relation.t -> changes:(Tuple.t * Tuple.t) list -> unit

val switches : t -> int
(** Total mode switches performed so far. *)

val matches_recompute : t -> int -> bool
