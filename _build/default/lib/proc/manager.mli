(** The database-procedure manager: one strategy, many procedures.

    A manager owns a population of stored procedures and processes reads
    and update notifications under one of the paper's four algorithms:

    - {!Always_recompute} — run the precompiled plan on every access;
    - {!Cache_invalidate} — serve from a {!Result_cache}, invalidated via
      {!Ilock} rule indexing when updates conflict;
    - {!Update_cache_avm} — maintain a
      {!Dbproc_avm.Materialized_view} differentially (non-shared);
    - {!Update_cache_rvm} — maintain results in a shared
      {!Dbproc_rete} network.

    The driver applies base-table updates itself (that cost is common to
    all strategies) and then calls {!on_update} with the old/new tuple
    pairs; {!access} returns a procedure's current value, charging
    whatever the strategy requires. *)

open Dbproc_relation
open Dbproc_query

type kind = Always_recompute | Cache_invalidate | Update_cache_avm | Update_cache_rvm

val kind_name : kind -> string
val all_kinds : kind list

type t

type proc_id = int

type rvm_shape =
  [ `Left_deep
  | `Right_deep
  | `Auto of (string * float) list
    (** choose per view with {!Dbproc_rete.Optimizer.choose_shape} under
        the given relation-update-frequency profile — the paper's
        statically optimized Rete network *) ]

val create :
  kind ->
  io:Dbproc_storage.Io.t ->
  record_bytes:int ->
  ?rvm_shape:rvm_shape ->
  unit ->
  t
(** [record_bytes] is the width of stored result tuples (the paper's [S]).
    [rvm_shape] picks the Rete join-tree shape (default [`Right_deep],
    the paper's model-2 network). *)

val kind : t -> kind
val procedure_count : t -> int

val register : t -> View_def.t -> proc_id
(** Install a procedure: compiles its plan and initializes whatever state
    the strategy keeps (cache contents, materialized view, Rete nodes).
    Initialization is setup and charges nothing. *)

val def_of : t -> proc_id -> View_def.t
val proc_ids : t -> proc_id list

val access : t -> proc_id -> Tuple.t list
(** Read the procedure's value under the manager's strategy, with full
    cost accounting. *)

val on_delta : t -> rel:Relation.t -> inserted:Tuple.t list -> deleted:Tuple.t list -> unit
(** Notify the manager that a transaction changed [rel]: [inserted] tuples
    were appended and [deleted] tuples removed (an in-place modification
    is its old tuple in [deleted] plus its new tuple in [inserted], per
    the paper's treatment).  Call after applying the base-table change. *)

val on_update : t -> rel:Relation.t -> changes:(Tuple.t * Tuple.t) list -> unit
(** [on_delta] for an in-place update transaction ([(old, new)] pairs). *)

val result_cardinality : t -> proc_id -> int
(** Current number of tuples in the procedure's result (recomputed,
    uncharged, for Always Recompute). *)

val matches_recompute : t -> proc_id -> bool
(** Whether the strategy's stored state for the procedure agrees with a
    from-scratch recompute (uncharged; test invariant).  Always true for
    Always Recompute and for an invalid Cache and Invalidate entry. *)

val shared_alpha_count : t -> int
(** RVM only: α-memories reused through sharing (0 otherwise). *)

val shared_beta_count : t -> int

val rete_dot : t -> string option
(** The RVM network rendered as Graphviz dot; [None] for the other
    strategies. *)
