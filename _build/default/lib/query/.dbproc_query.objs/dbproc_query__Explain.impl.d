lib/query/explain.ml: Cost Dbproc_index Dbproc_relation Dbproc_storage Dbproc_util Executor Float Format Io List Plan Planner Predicate Printf Relation View_def
