lib/query/view_def.ml: Dbproc_relation Format Hashtbl List Option Predicate Printf Relation Schema
