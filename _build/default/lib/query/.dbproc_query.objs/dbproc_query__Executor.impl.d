lib/query/executor.ml: Cost Dbproc_index Dbproc_relation Dbproc_storage Io List Plan Predicate Printf Relation Schema Tuple
