lib/query/plan.mli: Dbproc_index Dbproc_relation Format Predicate Relation Value
