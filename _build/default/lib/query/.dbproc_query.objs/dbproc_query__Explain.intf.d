lib/query/explain.mli: Dbproc_storage Format View_def
