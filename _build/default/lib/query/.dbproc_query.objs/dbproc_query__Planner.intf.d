lib/query/planner.mli: Dbproc_index Dbproc_relation Plan View_def
