lib/query/plan.ml: Dbproc_index Dbproc_relation Format List Predicate Relation Value
