lib/query/view_def.mli: Dbproc_relation Format Predicate Relation Schema
