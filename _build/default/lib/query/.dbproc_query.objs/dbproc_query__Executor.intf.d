lib/query/executor.mli: Dbproc_relation Plan Tuple
