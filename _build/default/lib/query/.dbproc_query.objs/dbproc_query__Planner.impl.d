lib/query/planner.ml: Btree Dbproc_index Dbproc_relation List Plan Predicate Relation Schema Value View_def
