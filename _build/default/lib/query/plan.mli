(** Physical query plans.

    Plans are the precompiled execution strategies the paper stores with
    each procedure: an access path for the base source and a chain of
    index-probe joins.  The planner ({!Planner}) builds them from
    {!View_def.t}; the executor ({!Executor}) runs them with cost
    accounting. *)

open Dbproc_relation

type access_path =
  | Btree_range of {
      attr : string;  (** indexed attribute *)
      lo : Value.t Dbproc_index.Btree.bound;
      hi : Value.t Dbproc_index.Btree.bound;
      residual : Predicate.t;  (** remaining terms screened per tuple *)
    }
  | Hash_point of {
      attr : string;  (** hash-indexed attribute with an equality term *)
      key : Value.t;
      residual : Predicate.t;
    }
  | Full_scan of { residual : Predicate.t }

type join_probe = {
  probe_rel : Relation.t;
  probe_attr : string;  (** attribute of [probe_rel] the join compares against *)
  outer_attr : int;  (** position in the outer (accumulated) tuple *)
  op : Predicate.op;
  residual : Predicate.t;  (** [probe_rel]-local terms screened per probe result *)
  use_index : bool;
      (** [true]: probe an index on [probe_attr] per outer tuple (requires
          an equality join over an indexed attribute — the paper's plans).
          [false]: scan [probe_rel] and test the join term per pair; the
          scan's pages are charged once per query (per-operation dedup),
          so this behaves like a block nested-loop with the paper's
          query-scoped memory. *)
}

type t = { base_rel : Relation.t; access : access_path; probes : join_probe list }

val pp : Format.formatter -> t -> unit
