open Dbproc_relation
open Dbproc_index

exception Unsupported_plan of string
(* Every view shape this library builds now compiles (non-equality or
   unindexed joins degrade to scan joins); the exception remains in the
   interface for callers that pattern-match on it. *)

let tighten_lo current candidate compare_v =
  match (current, candidate) with
  | Btree.Unbounded, c -> c
  | c, Btree.Unbounded -> c
  | Inclusive a, Inclusive b -> if compare_v a b >= 0 then Inclusive a else Inclusive b
  | Exclusive a, Exclusive b -> if compare_v a b >= 0 then Exclusive a else Exclusive b
  | Inclusive a, Exclusive b | Exclusive b, Inclusive a ->
    if compare_v b a >= 0 then Exclusive b else Inclusive a

let tighten_hi current candidate compare_v =
  match (current, candidate) with
  | Btree.Unbounded, c -> c
  | c, Btree.Unbounded -> c
  | Inclusive a, Inclusive b -> if compare_v a b <= 0 then Inclusive a else Inclusive b
  | Exclusive a, Exclusive b -> if compare_v a b <= 0 then Exclusive a else Exclusive b
  | Inclusive a, Exclusive b | Exclusive b, Inclusive a ->
    if compare_v b a <= 0 then Exclusive b else Inclusive a

let bounds_of_restriction restriction ~attr =
  List.fold_left
    (fun (lo, hi) (term : Predicate.term) ->
      if term.attr <> attr then (lo, hi)
      else
        match term.op with
        | Predicate.Eq ->
          ( tighten_lo lo (Inclusive term.value) Value.compare,
            tighten_hi hi (Inclusive term.value) Value.compare )
        | Predicate.Ge -> (tighten_lo lo (Inclusive term.value) Value.compare, hi)
        | Predicate.Gt -> (tighten_lo lo (Exclusive term.value) Value.compare, hi)
        | Predicate.Le -> (lo, tighten_hi hi (Inclusive term.value) Value.compare)
        | Predicate.Lt -> (lo, tighten_hi hi (Exclusive term.value) Value.compare)
        | Predicate.Ne -> (lo, hi))
    (Btree.Unbounded, Btree.Unbounded)
    restriction

let interval_of_restriction (restriction : Predicate.t) =
  match restriction with
  | [] -> None
  | terms -> (
    let attrs = List.sort_uniq compare (List.map (fun (t : Predicate.term) -> t.attr) terms) in
    match attrs with
    | [ attr ] -> (
      let lo, hi = bounds_of_restriction restriction ~attr in
      match (lo, hi) with
      | Btree.Unbounded, Btree.Unbounded -> None
      | _ -> Some (attr, lo, hi))
    | _ -> None)

let choose_access (source : View_def.source) =
  let rel = source.rel in
  let schema = Relation.schema rel in
  let restricted_index kind_wanted =
    List.find_map
      (fun (attr, kind) ->
        if kind <> kind_wanted then None
        else begin
          let pos = Schema.index_of schema attr in
          if List.exists (fun (t : Predicate.term) -> t.attr = pos) source.restriction then
            Some (attr, pos)
          else None
        end)
      (Relation.indexed_attrs rel)
  in
  match restricted_index `Btree with
  | Some (attr, pos) -> (
    let lo, hi = bounds_of_restriction source.restriction ~attr:pos in
    match (lo, hi) with
    | Btree.Unbounded, Btree.Unbounded -> Plan.Full_scan { residual = source.restriction }
    | _ -> Plan.Btree_range { attr; lo; hi; residual = source.restriction })
  | None -> (
    (* a hash index answers only equality terms *)
    let hash_point =
      List.find_map
        (fun (attr, kind) ->
          if kind <> `Hash then None
          else begin
            let pos = Schema.index_of schema attr in
            List.find_map
              (fun (t : Predicate.term) ->
                if t.attr = pos && t.op = Predicate.Eq then Some (attr, t.value) else None)
              source.restriction
          end)
        (Relation.indexed_attrs rel)
    in
    match hash_point with
    | Some (attr, key) -> Plan.Hash_point { attr; key; residual = source.restriction }
    | None -> Plan.Full_scan { residual = source.restriction })

let choose_probe (step : View_def.join_step) =
  let rel = step.source.rel in
  let attr_name = (Schema.attr (Relation.schema rel) step.right_attr).name in
  let has_index =
    List.exists (fun (attr, _) -> attr = attr_name) (Relation.indexed_attrs rel)
  in
  {
    Plan.probe_rel = rel;
    probe_attr = attr_name;
    outer_attr = step.left_attr;
    op = step.op;
    residual = step.source.restriction;
    (* the paper's plans probe an index per outer tuple; only equality
       joins over indexed attributes can — anything else degrades to a
       scan join *)
    use_index = (step.op = Predicate.Eq && has_index);
  }

let compile (def : View_def.t) =
  {
    Plan.base_rel = def.base.rel;
    access = choose_access def.base;
    probes = List.map choose_probe def.steps;
  }
