(** Static plan compilation.

    The paper's strategies all use precompiled plans ("statically
    optimized"): the plan is built once when the procedure is defined and
    reused on every access.  The planner picks, per the paper's setup:

    - base access: a B-tree range scan when the restriction constrains a
      B-tree-indexed attribute (R1's selection predicate), a hash point
      lookup for an equality over a hash-indexed attribute, otherwise a
      full scan;
    - joins: an index probe on the step's right attribute when the step
      is an equality over an indexed attribute (the paper's plans);
      anything else degrades to a scan join (inner pages charged once per
      query under the per-operation dedup). *)

exception Unsupported_plan of string
(** No longer raised by {!compile}; kept for callers that match on it. *)

val compile : View_def.t -> Plan.t

val bounds_of_restriction :
  Dbproc_relation.Predicate.t ->
  attr:int ->
  Dbproc_relation.Value.t Dbproc_index.Btree.bound
  * Dbproc_relation.Value.t Dbproc_index.Btree.bound
(** Extract the tightest (lo, hi) bounds the conjunction imposes on one
    attribute (exposed for tests). *)

val interval_of_restriction :
  Dbproc_relation.Predicate.t ->
  (int
  * Dbproc_relation.Value.t Dbproc_index.Btree.bound
  * Dbproc_relation.Value.t Dbproc_index.Btree.bound)
  option
(** If the conjunction constrains exactly one attribute with at least one
    range/equality term, the [(attr, lo, hi)] interval covering every
    satisfying tuple — the region an index scan inspects, hence the region
    i-locks cover and Rete t-const nodes discriminate on.  [None] for
    multi-attribute or unconstrained restrictions. *)
