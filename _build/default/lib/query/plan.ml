open Dbproc_relation

type access_path =
  | Btree_range of {
      attr : string;
      lo : Value.t Dbproc_index.Btree.bound;
      hi : Value.t Dbproc_index.Btree.bound;
      residual : Predicate.t;
    }
  | Hash_point of { attr : string; key : Value.t; residual : Predicate.t }
  | Full_scan of { residual : Predicate.t }

type join_probe = {
  probe_rel : Relation.t;
  probe_attr : string;
  outer_attr : int;
  op : Predicate.op;
  residual : Predicate.t;
  use_index : bool;
}

type t = { base_rel : Relation.t; access : access_path; probes : join_probe list }

let pp_bound ppf = function
  | Dbproc_index.Btree.Unbounded -> Format.pp_print_string ppf "_"
  | Inclusive v -> Format.fprintf ppf "[%a" Value.pp v
  | Exclusive v -> Format.fprintf ppf "(%a" Value.pp v

let pp ppf t =
  (match t.access with
  | Btree_range b ->
    Format.fprintf ppf "btree-range %s.%s %a..%a" (Relation.name t.base_rel) b.attr pp_bound
      b.lo pp_bound b.hi
  | Hash_point h ->
    Format.fprintf ppf "hash-point %s.%s = %a" (Relation.name t.base_rel) h.attr Value.pp
      h.key
  | Full_scan _ -> Format.fprintf ppf "full-scan %s" (Relation.name t.base_rel));
  List.iter
    (fun p ->
      Format.fprintf ppf " -> %s %s.%s (outer .%d %a)"
        (if p.use_index then "probe" else "scan-join")
        (Relation.name p.probe_rel) p.probe_attr p.outer_attr Predicate.pp_op p.op)
    t.probes
