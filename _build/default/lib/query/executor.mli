(** Plan execution with the paper's cost accounting.

    Charges while running a plan:
    - page touches go through the relations' {!Dbproc_storage.Io.t} and are
      deduplicated per execution (a page touched twice in one query charges
      once — the Yao-function assumption);
    - one [C1] CPU screen per tuple materialized by the base access path;
    - one [C1] per outer tuple per join-probe stage (the paper's
      "additional [C1 fN] predicate tests" per join).

    Tuples flowing between stages are concatenations of the source tuples,
    matching {!View_def.schema}. *)

open Dbproc_relation

val run : Plan.t -> Tuple.t list
(** Execute a full plan. *)

val run_base : Plan.t -> Tuple.t list
(** Execute only the base access path (no probes). *)

val probe_chain : probes:Plan.join_probe list -> outer:Tuple.t list -> Tuple.t list
(** Push already-materialized outer tuples through a chain of join probes
    — the building block AVM uses to join delta tuples to the other base
    relations.  Charged like the probe stages of {!run} (page dedup scoped
    to this call). *)
