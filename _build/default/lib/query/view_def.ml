open Dbproc_relation

type source = { rel : Relation.t; restriction : Predicate.t }

type join_step = {
  source : source;
  left_attr : int;
  op : Predicate.op;
  right_attr : int;
}

type t = { name : string; base : source; steps : join_step list }

let select ~name ~rel ~restriction = { name; base = { rel; restriction }; steps = [] }

let sources t = t.base :: List.map (fun s -> s.source) t.steps
let relations t = List.map (fun s -> s.rel) (sources t)

let depends_on t rel =
  List.exists (fun r -> Relation.name r = Relation.name rel) (relations t)

(* Qualify each source schema with its relation name; repeated relation
   names get a #n suffix so the concatenated schema stays well-formed. *)
let qualified_schemas srcs =
  let seen = Hashtbl.create 4 in
  List.map
    (fun src ->
      let base_name = Relation.name src.rel in
      let n = Option.value (Hashtbl.find_opt seen base_name) ~default:0 in
      Hashtbl.replace seen base_name (n + 1);
      let prefix = if n = 0 then base_name else Printf.sprintf "%s#%d" base_name n in
      Schema.qualify ~prefix (Relation.schema src.rel))
    srcs

let schema t =
  match qualified_schemas (sources t) with
  | [] -> assert false
  | first :: rest -> List.fold_left Schema.concat first rest

let source_offsets t =
  let srcs = sources t in
  let _, offsets =
    List.fold_left
      (fun (off, acc) src -> (off + Schema.arity (Relation.schema src.rel), off :: acc))
      (0, []) srcs
  in
  List.rev offsets

let join t ~rel ~restriction ~left ~op ~right =
  let left_attr = Schema.index_of (schema t) left in
  let right_attr = Schema.index_of (Relation.schema rel) right in
  let step = { source = { rel; restriction }; left_attr; op; right_attr } in
  { t with steps = t.steps @ [ step ] }

let pp ppf t =
  Format.fprintf ppf "view %s: %s where %a" t.name
    (Relation.name t.base.rel)
    (Predicate.pp (Relation.schema t.base.rel))
    t.base.restriction;
  List.iter
    (fun step ->
      Format.fprintf ppf " join %s on .%d %a %s.%d where %a"
        (Relation.name step.source.rel)
        step.left_attr Predicate.pp_op step.op
        (Relation.name step.source.rel)
        step.right_attr
        (Predicate.pp (Relation.schema step.source.rel))
        step.source.restriction)
    t.steps
