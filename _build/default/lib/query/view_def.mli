(** Logical definitions of database-procedure queries.

    A definition is a restricted source relation followed by a chain of
    equi-join steps, each joining an attribute of the accumulated result to
    an attribute of a new restricted source — exactly the query family the
    paper analyzes (P1 is a bare source; model-1 P2 adds one step; model-2
    P2 adds two).  Arbitrary left-deep chains are supported. *)

open Dbproc_relation

type source = { rel : Relation.t; restriction : Predicate.t }
(** A base relation filtered by a conjunction of t-const terms (indices
    into the relation's own schema). *)

type join_step = {
  source : source;
  left_attr : int;  (** position in the {e accumulated} result schema *)
  op : Predicate.op;
  right_attr : int;  (** position in [source]'s schema *)
}

type t = { name : string; base : source; steps : join_step list }

val select : name:string -> rel:Relation.t -> restriction:Predicate.t -> t
(** A P1-style single-relation selection. *)

val join :
  t -> rel:Relation.t -> restriction:Predicate.t -> left:string -> op:Predicate.op ->
  right:string -> t
(** [join def ~rel ~left ~op ~right] appends a join step.  [left] is an
    attribute name in [def]'s (qualified) result schema, [right] one in
    [rel]'s schema.
    @raise Not_found if either attribute is missing. *)

val schema : t -> Schema.t
(** Result schema: the concatenation of each source's schema qualified
    with its relation name ("R1.a", "R2.b", ...).  Joining the same
    relation twice qualifies later occurrences with a [#n] suffix. *)

val sources : t -> source list
(** Base source first, then each step's source. *)

val relations : t -> Relation.t list

val depends_on : t -> Relation.t -> bool
(** Whether the view reads the given relation (by name). *)

val source_offsets : t -> int list
(** Starting position of each source's attributes within {!schema}, in
    {!sources} order. *)

val pp : Format.formatter -> t -> unit
