lib/index/btree.ml: Array Dbproc_storage Format Io List
