lib/index/btree.mli: Dbproc_storage
