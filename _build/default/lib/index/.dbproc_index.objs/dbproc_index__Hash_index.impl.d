lib/index/hash_index.ml: Array Dbproc_storage Hashtbl Io List
