lib/index/hash_index.mli: Dbproc_storage
