(** A page-based B+-tree over the simulated disk.

    One node occupies one page and holds up to [page_bytes / entry_bytes]
    entries (the paper's fanout [B/d], 200 with the defaults).  Every node
    visited during a search, range scan or mutation charges one page read
    through the tree's {!Dbproc_storage.Io.t}; modified nodes charge one
    page write — so searching a tree of height [H] costs [H + 1] reads,
    matching the paper's [C2 * H1] index-descent term plus the leaf.

    Duplicate keys are supported (the paper indexes non-unique selection
    attributes).  Deletion is {e lazy}: entries are removed and nodes may
    underflow, but nodes are not merged — standard practice in systems
    whose workloads do not shrink files, and the cost model only depends on
    the descent path length. *)

type ('k, 'v) t

val create :
  io:Dbproc_storage.Io.t ->
  entry_bytes:int ->
  compare:('k -> 'k -> int) ->
  unit ->
  ('k, 'v) t
(** [create ~io ~entry_bytes ~compare ()] makes an empty tree whose node
    capacity is [Io.page_bytes io / entry_bytes] (at least 4). *)

val entry_count : _ t -> int
val node_count : _ t -> int

val height : _ t -> int
(** Number of levels; 1 for a tree that is a single leaf. *)

val capacity : _ t -> int
(** Entries per node. *)

val insert : ('k, 'v) t -> 'k -> 'v -> unit

val remove : ('k, 'v) t -> 'k -> ('v -> bool) -> bool
(** [remove t key pred] deletes the first entry with key [key] satisfying
    [pred] and reports whether one was found. *)

val search : ('k, 'v) t -> 'k -> 'v list
(** All values stored under an exactly-equal key, in insertion order. *)

type 'k bound = Unbounded | Inclusive of 'k | Exclusive of 'k

val range : ('k, 'v) t -> lo:'k bound -> hi:'k bound -> f:('k -> 'v -> unit) -> unit
(** In-order visit of all entries within the bounds. *)

val iter : ('k, 'v) t -> f:('k -> 'v -> unit) -> unit
(** Visit everything ({!range} with unbounded ends). *)

val check_invariants : ('k, 'v) t -> unit
(** Verify ordering, key/child arity, leaf chaining and entry count; used
    by the property tests.  @raise Failure describing the violation. *)
