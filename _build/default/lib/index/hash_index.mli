(** A static hash index over the simulated disk.

    The index has a fixed bucket directory; each bucket is a chain of
    pages holding [page_bytes / entry_bytes] entries each.  A probe reads
    the pages of one bucket chain (one page in the common, well-sized
    case) — the paper's hash indexes on [R2.a] and [R3.c] are probed once
    per outer tuple, so join I/O is [Yao]-shaped page reads on the indexed
    relation plus one read per probe here.

    Sizing: {!create} takes the expected number of entries and aims for
    single-page buckets at ~70% occupancy. *)

type ('k, 'v) t

val create :
  io:Dbproc_storage.Io.t ->
  entry_bytes:int ->
  expected_entries:int ->
  ?hash:('k -> int) ->
  equal:('k -> 'k -> bool) ->
  unit ->
  ('k, 'v) t
(** [hash] defaults to [Hashtbl.hash]. *)

val entry_count : _ t -> int
val bucket_count : _ t -> int

val page_count : _ t -> int
(** Total pages across all bucket chains. *)

val insert : ('k, 'v) t -> 'k -> 'v -> unit
(** Appends to the key's bucket: reads the chain to find space, writes the
    page receiving the entry. *)

val remove : ('k, 'v) t -> 'k -> ('v -> bool) -> bool
(** Remove the first matching entry in the key's bucket; reads the chain
    up to the hit and writes the page it was on. *)

val search : ('k, 'v) t -> 'k -> 'v list
(** All values under the key, charging one read per chain page. *)

val iter : ('k, 'v) t -> f:('k -> 'v -> unit) -> unit
(** Visit every entry, one read per page. *)

val chain_length : ('k, 'v) t -> 'k -> int
(** Pages in the key's bucket chain (no charge; sizing diagnostics). *)
