(* Referential integrity via database procedures — feature (4) in the
   paper's introduction.

   ORDERS references CUSTOMERS.  A database procedure VALID_ORDERS joins
   each order to its customer; an order with no matching customer silently
   drops out of the join.  Keeping VALID_ORDERS in an update cache makes
   the integrity check `|ORDERS| - |VALID_ORDERS|` a constant-time read of
   maintained state instead of a join per check.

   Run with:  dune exec examples/referential_integrity.exe *)

open Dbproc
open Dbproc.Storage
open Dbproc.Query

let customer_schema = Schema.create [ ("cid", Value.TInt); ("tier", Value.TInt) ]

let order_schema =
  Schema.create [ ("oid", Value.TInt); ("cust", Value.TInt); ("amount", Value.TInt) ]

let () =
  let cost = Cost.create () in
  let io = Io.direct cost ~page_bytes:4000 in
  let customers =
    Relation.create ~io ~name:"CUSTOMERS" ~schema:customer_schema ~tuple_bytes:100
  in
  Relation.load customers
    (List.init 50 (fun cid -> Tuple.create [ Value.Int cid; Value.Int (cid mod 3) ]));
  Relation.add_hash_index ~primary:true customers ~attr:"cid" ~entry_bytes:100
    ~expected_entries:50;
  let orders = Relation.create ~io ~name:"ORDERS" ~schema:order_schema ~tuple_bytes:100 in
  Relation.load orders
    (List.init 200 (fun oid ->
         Tuple.create [ Value.Int oid; Value.Int (oid mod 50); Value.Int (100 + oid) ]));
  Relation.add_btree_index orders ~attr:"oid" ~entry_bytes:20;

  (* The integrity view: orders that DO have a customer. *)
  let valid_orders =
    View_def.join
      (View_def.select ~name:"VALID_ORDERS" ~rel:orders ~restriction:Predicate.always_true)
      ~rel:customers ~restriction:Predicate.always_true ~left:"ORDERS.cust" ~op:Predicate.Eq
      ~right:"cid"
  in
  let manager = Proc.Manager.create Proc.Manager.Update_cache_avm ~io ~record_bytes:100 () in
  let view_id = Proc.Manager.register manager valid_orders in

  let check label =
    let valid = Proc.Manager.result_cardinality manager view_id in
    let total = Relation.cardinality orders in
    Printf.printf "%-36s orders=%d valid=%d dangling=%d%s\n" label total valid (total - valid)
      (if total = valid then "" else "   <-- INTEGRITY VIOLATION")
  in
  check "initial load:";

  (* A buggy batch update retargets three orders to customer 99, which
     does not exist. *)
  let retarget oid cust =
    match Relation.fetch_by_key orders ~attr:"oid" (Value.Int oid) with
    | (rid, old_t) :: _ ->
      let new_t =
        Tuple.create [ Tuple.get old_t 0; Value.Int cust; Tuple.get old_t 2 ]
      in
      let old_new =
        Cost.with_disabled cost (fun () -> Relation.update_batch orders [ (rid, new_t) ])
      in
      Proc.Manager.on_update manager ~rel:orders ~changes:old_new
    | [] -> ()
  in
  List.iter (fun oid -> retarget oid 99) [ 10; 20; 30 ];
  check "after buggy retarget to cust 99:";

  (* Repair: point the dangling orders at customer 7. *)
  List.iter (fun oid -> retarget oid 7) [ 10; 20; 30 ];
  check "after repair:";

  (* Cost of a check: it reads nothing but the maintained cardinality. *)
  Cost.reset cost;
  ignore (Proc.Manager.result_cardinality manager view_id);
  Printf.printf "\nintegrity check cost with update cache: %.0f ms\n"
    (Cost.total_ms Cost.default_charges cost);
  Cost.reset cost;
  ignore (Executor.run (Planner.compile valid_orders));
  Printf.printf "same check recomputing the join instead: %.0f ms\n"
    (Cost.total_ms Cost.default_charges cost)
