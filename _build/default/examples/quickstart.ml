(* Quickstart: define a database procedure over the paper's EMP/DEPT
   schema and process queries against it under all four strategies.

   Run with:  dune exec examples/quickstart.exe *)

open Dbproc
open Dbproc.Storage
open Dbproc.Query

let () =
  (* 1. A simulated database: one I/O layer, cost accounting attached. *)
  let cost = Cost.create () in
  let io = Io.direct cost ~page_bytes:4000 in
  let catalog = Catalog.create ~io in

  (* 2. Base relations (the paper's Section 2 example schema). *)
  let emp_schema =
    Schema.create
      [
        ("name", Value.TStr);
        ("age", Value.TInt);
        ("dept", Value.TStr);
        ("salary", Value.TInt);
        ("job", Value.TStr);
      ]
  in
  let emp = Catalog.create_relation catalog ~name:"EMP" ~schema:emp_schema ~tuple_bytes:100 in
  let dept_schema = Schema.create [ ("dname", Value.TStr); ("floor", Value.TInt) ] in
  let dept = Catalog.create_relation catalog ~name:"DEPT" ~schema:dept_schema ~tuple_bytes:100 in
  let mk_emp name age d salary job =
    Tuple.create
      [ Value.Str name; Value.Int age; Value.Str d; Value.Int salary; Value.Str job ]
  in
  Relation.load emp
    [
      mk_emp "Alice" 30 "Shipping" 40_000 "Clerk";
      mk_emp "Bob" 40 "Accounting" 50_000 "Programmer";
      mk_emp "Carol" 35 "Shipping" 45_000 "Programmer";
      mk_emp "Dave" 29 "Shipping" 38_000 "Programmer";
    ];
  Relation.add_btree_index emp ~attr:"age" ~entry_bytes:20;
  Relation.load dept
    [
      Tuple.create [ Value.Str "Shipping"; Value.Int 1 ];
      Tuple.create [ Value.Str "Accounting"; Value.Int 2 ];
    ];
  Relation.add_hash_index ~primary:true dept ~attr:"dname" ~entry_bytes:100
    ~expected_entries:2;

  (* 3. A database procedure: first-floor programmers (the paper's PROGS1),
     written as a restricted selection joined to DEPT. *)
  let progs1 =
    View_def.join
      (View_def.select ~name:"PROGS1" ~rel:emp
         ~restriction:
           [
             Predicate.term
               ~attr:(Schema.index_of emp_schema "job")
               ~op:Predicate.Eq ~value:(Value.Str "Programmer");
           ])
      ~rel:dept
      ~restriction:
        [
          Predicate.term
            ~attr:(Schema.index_of dept_schema "floor")
            ~op:Predicate.Eq ~value:(Value.Int 1);
        ]
      ~left:"EMP.dept" ~op:Predicate.Eq ~right:"dname"
  in

  (* 4. Install it under each strategy and access it. *)
  let charges = Cost.default_charges in
  print_endline "PROGS1 = first-floor programmers, under each strategy:\n";
  List.iter
    (fun kind ->
      let manager = Proc.Manager.create kind ~io ~record_bytes:100 () in
      let id = Proc.Manager.register manager progs1 in
      Cost.reset cost;
      let result = Proc.Manager.access manager id in
      let access_ms = Cost.total_ms charges cost in
      Printf.printf "%-22s -> %d tuples, %.0f ms (simulated)\n"
        (Proc.Manager.kind_name kind) (List.length result) access_ms;
      (* An update: Dave moves to Accounting (floor 2), leaving PROGS1. *)
      (match Relation.fetch_by_key emp ~attr:"age" (Value.Int 29) with
      | (rid, _) :: _ ->
        let old_new =
          Cost.with_disabled cost (fun () ->
              Relation.update_batch emp
                [ (rid, mk_emp "Dave" 29 "Accounting" 38_000 "Programmer") ])
        in
        Cost.reset cost;
        Proc.Manager.on_update manager ~rel:emp ~changes:old_new;
        let maint_ms = Cost.total_ms charges cost in
        Cost.reset cost;
        let after = Proc.Manager.access manager id in
        Printf.printf "%-22s    after Dave moves: %d tuples (maintenance %.0f ms, re-access %.0f ms)\n"
          "" (List.length after) maint_ms (Cost.total_ms charges cost);
        (* put Dave back so every strategy sees the same start state *)
        ignore
          (Cost.with_disabled cost (fun () ->
               Relation.update_batch emp
                 [ (rid, mk_emp "Dave" 29 "Shipping" 38_000 "Programmer") ]))
      | [] -> ()))
    Proc.Manager.
      [ Always_recompute; Cache_invalidate; Update_cache_avm; Update_cache_rvm ];
  print_newline ();
  print_endline "The same tuples come back every time; what differs is where the work";
  print_endline "happens: at access time (AR), on the first access after a conflicting";
  print_endline "update (CI), or spread across updates (UC via AVM or a Rete network)."
