(* Designing the maintenance network from update statistics — the paper's
   Section 8: "Static optimization methods will use statistics on relative
   update frequency when designing an optimal plan for maintaining
   procedures (e.g. an optimized Rete network)."

   This example builds a 3-way procedure, asks the optimizer which network
   shape each update profile favors, verifies the choice by measuring both
   shapes in the engine, and prints the winning network as Graphviz dot.

   Run with:  dune exec examples/network_design.exe *)

open Dbproc
open Dbproc.Costmodel

let () =
  let params =
    { Workload.Driver.default_sim_params with Params.f = 0.005; f2 = 0.5; k = 60.0; q = 30.0 }
  in
  let profiles =
    [
      ("orders feed: only R1 changes", [ ("R1", 1.0) ]);
      ("reference-data refresh: only R2 changes", [ ("R2", 1.0) ]);
      ("mixed: 70% R1 / 30% R2", [ ("R1", 0.7); ("R2", 0.3) ]);
    ]
  in
  let db = Workload.Database.build ~seed:5 ~model:Model.Model2 params in
  let def = List.hd db.Workload.Database.p2_defs in
  print_endline "optimizer estimates (expected maintenance ms per update transaction):\n";
  let table =
    Util.Ascii_table.create
      ~aligns:[ Util.Ascii_table.Left ]
      ~header:[ "update profile"; "left-deep est"; "right-deep est"; "choice" ]
      ()
  in
  List.iter
    (fun (label, profile) ->
      let est shape =
        (Rete.Optimizer.estimate def ~profile ~shape).Rete.Optimizer.cost_per_update_ms
      in
      Util.Ascii_table.add_row table
        [
          label;
          Printf.sprintf "%.0f" (est `Left_deep);
          Printf.sprintf "%.0f" (est `Right_deep);
          (match Rete.Optimizer.choose_shape def ~profile with
          | `Left_deep -> "left-deep"
          | `Right_deep -> "right-deep (paper's fig 16)");
        ])
    profiles;
  Util.Ascii_table.print table;

  (* Validate one choice in the engine: under R2-only updates the
     optimizer picks left-deep; measure both shapes. *)
  print_endline "\nmeasured under an R2-only update stream (ms/query):";
  List.iter
    (fun (name, shape) ->
      let r =
        Workload.Driver.run_strategy ~rvm_shape:shape ~r2_update_fraction:1.0
          ~model:Model.Model2 ~params Strategy.Update_cache_rvm
      in
      Printf.printf "  %-28s %.0f%s\n" name r.measured_ms_per_query
        (if r.consistent then "" else "  INCONSISTENT"))
    [ ("right-deep (fixed)", `Right_deep); ("left-deep (optimizer's pick)", `Left_deep) ];

  (* Show the chosen network. *)
  print_endline "\nthe optimized network for the R2-heavy profile, as Graphviz dot:";
  let builder = Rete.Builder.create ~io:db.Workload.Database.io ~record_bytes:100 () in
  let shape = Rete.Optimizer.choose_shape def ~profile:[ ("R2", 1.0) ] in
  ignore (Rete.Builder.add_view builder ~shape def);
  print_string (Rete.Network.to_dot (Rete.Builder.network builder))
