examples/forms_app.ml: Array Cost Dbproc Executor Io List Planner Predicate Printf Relation Rete Schema Tuple Value View_def
