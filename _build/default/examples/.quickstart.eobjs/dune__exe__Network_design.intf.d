examples/network_design.mli:
