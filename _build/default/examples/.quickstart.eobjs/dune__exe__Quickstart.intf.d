examples/quickstart.mli:
