examples/strategy_advisor.ml: Dbproc Format List Model Params Printf Regions Strategy Util Workload
