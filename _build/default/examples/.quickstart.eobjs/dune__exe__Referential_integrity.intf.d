examples/referential_integrity.mli:
