examples/quickstart.ml: Catalog Cost Dbproc Io List Predicate Printf Proc Relation Schema Tuple Value View_def
