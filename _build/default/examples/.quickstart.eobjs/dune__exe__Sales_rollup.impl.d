examples/sales_rollup.ml: Aggregate_view Array Cost Dbproc Executor Io List Planner Predicate Printf Relation Schema Tuple Util Value View_def
