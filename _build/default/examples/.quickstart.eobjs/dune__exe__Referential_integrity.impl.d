examples/referential_integrity.ml: Cost Dbproc Executor Io List Planner Predicate Printf Proc Relation Schema Tuple Value View_def
