examples/forms_app.mli:
