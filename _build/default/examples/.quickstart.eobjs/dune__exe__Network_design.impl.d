examples/network_design.ml: Dbproc List Model Params Printf Rete Strategy Util Workload
