(* Strategy selection — the paper's Section 8 question: given a workload,
   which processing strategy should a DBMS pick for a stored procedure?

   The advisor evaluates the paper's cost model over a set of workload
   profiles, prints the recommendation for each, and then validates one
   recommendation by actually running the workload in the simulated
   engine.

   Run with:  dune exec examples/strategy_advisor.exe *)

open Dbproc
open Dbproc.Costmodel

type profile = { label : string; params : Params.t; model : Model.which }

let d = Params.default

let profiles =
  [
    {
      label = "dashboard: hot small reports, few updates";
      params = Params.with_update_probability { d with Params.f = 0.0001; z = 0.05 } 0.05;
      model = Model.Model1;
    };
    {
      label = "catalog pages: large objects, rare edits";
      params = Params.with_update_probability { d with Params.f = 0.01 } 0.1;
      model = Model.Model1;
    };
    {
      label = "order entry: write-heavy OLTP";
      params = Params.with_update_probability d 0.85;
      model = Model.Model1;
    };
    {
      label = "reporting mart: 3-way joins, shared dimensions";
      params = { (Params.with_update_probability d 0.3) with Params.sf = 0.8 };
      model = Model.Model2;
    };
    {
      label = "expensive invalidation (no NVRAM), mixed load";
      params = Params.with_update_probability { d with Params.c_inval = 60.0 } 0.4;
      model = Model.Model1;
    };
  ]

let () =
  print_endline "strategy advisor: expected ms per procedure access\n";
  let table =
    Util.Ascii_table.create
      ~aligns:[ Util.Ascii_table.Left ]
      ~header:[ "workload"; "AR"; "CI"; "AVM"; "RVM"; "recommendation" ]
      ()
  in
  List.iter
    (fun { label; params; model } ->
      let cost s = Model.cost model params s in
      let best = Regions.best model params in
      Util.Ascii_table.add_row table
        [
          label;
          Printf.sprintf "%.0f" (cost Strategy.Always_recompute);
          Printf.sprintf "%.0f" (cost Strategy.Cache_invalidate);
          Printf.sprintf "%.0f" (cost Strategy.Update_cache_avm);
          Printf.sprintf "%.0f" (cost Strategy.Update_cache_rvm);
          Strategy.name best;
        ])
    profiles;
  Util.Ascii_table.print table;

  (* Validate the "order entry" recommendation against the engine. *)
  print_endline "\nvalidating the write-heavy profile in the simulated engine (scaled 10x down):";
  let profile = List.nth profiles 2 in
  let params =
    Params.with_update_probability
      { (Workload.Driver.scale_params profile.params ~factor:10.0) with Params.q = 30.0 }
      (Params.update_probability profile.params)
  in
  let results = Workload.Driver.run_all ~model:profile.model ~params () in
  List.iter (fun r -> Format.printf "  %a@." Workload.Driver.pp_result r) results;
  let best_measured =
    List.fold_left
      (fun acc (r : Workload.Driver.result) ->
        match acc with
        | Some (b : Workload.Driver.result) when b.measured_ms_per_query <= r.measured_ms_per_query ->
          acc
        | _ -> Some r)
      None results
  in
  (match best_measured with
  | Some r ->
    Printf.printf
      "\ncheapest in the engine: %s — at high update rates AR and CI sit within a few\n\
       percent of each other (the paper's CI plateau), while both UC variants pay for\n\
       maintenance they rarely serve.\n"
      (Strategy.name r.strategy)
  | None -> ());
  print_endline
    "\nPer Section 8: implement Always Recompute first; add Cache and Invalidate for small\n\
     objects (it never degrades badly if invalidation is cheap); add Update Cache when\n\
     large objects must stay fresh under moderate update rates."
