(* Aggregation over database procedures — feature (5) of the paper's
   introduction ("aggregation and generalization").

   A sales dashboard keeps revenue rollups per region.  The rollup is an
   aggregate procedure (COUNT, SUM, MAX over a join of SALES and STORES)
   maintained differentially: each sale posted updates only the affected
   group rows, and reading the dashboard is a couple of page reads instead
   of a join + aggregation.

   Run with:  dune exec examples/sales_rollup.exe *)

open Dbproc
open Dbproc.Storage
open Dbproc.Query
open Dbproc.Avm

let store_schema = Schema.create [ ("store_id", Value.TInt); ("region", Value.TStr) ]

let sale_schema =
  Schema.create
    [ ("sale_id", Value.TInt); ("store", Value.TInt); ("amount", Value.TInt) ]

let regions = [| "north"; "south"; "east"; "west" |]

let () =
  let cost = Cost.create () in
  let io = Io.direct cost ~page_bytes:4000 in
  let stores = Relation.create ~io ~name:"STORES" ~schema:store_schema ~tuple_bytes:100 in
  Relation.load stores
    (List.init 20 (fun sid ->
         Tuple.create [ Value.Int sid; Value.Str regions.(sid mod 4) ]));
  Relation.add_hash_index ~primary:true stores ~attr:"store_id" ~entry_bytes:100
    ~expected_entries:20;
  let sales = Relation.create ~io ~name:"SALES" ~schema:sale_schema ~tuple_bytes:100 in
  let prng = Util.Prng.create 7 in
  Relation.load sales
    (List.init 500 (fun sale_id ->
         Tuple.create
           [
             Value.Int sale_id;
             Value.Int (Util.Prng.int prng 20);
             Value.Int (10 + Util.Prng.int prng 490);
           ]));
  Relation.add_btree_index sales ~attr:"sale_id" ~entry_bytes:20;

  (* The underlying procedure: every sale joined to its store. *)
  let sales_by_store =
    View_def.join
      (View_def.select ~name:"SALES_X" ~rel:sales ~restriction:Predicate.always_true)
      ~rel:stores ~restriction:Predicate.always_true ~left:"SALES.store" ~op:Predicate.Eq
      ~right:"store_id"
  in
  let schema = View_def.schema sales_by_store in
  let amount = Schema.index_of schema "SALES.amount" in
  let region = Schema.index_of schema "STORES.region" in
  let rollup =
    Aggregate_view.create ~name:"REVENUE_BY_REGION" ~record_bytes:100 ~group_by:[ region ]
      ~aggs:[ Aggregate_view.Count; Aggregate_view.Sum amount; Aggregate_view.Max amount ]
      sales_by_store
  in

  let print_dashboard () =
    let table =
      Util.Ascii_table.create
        ~aligns:[ Util.Ascii_table.Left ]
        ~header:[ "region"; "sales"; "revenue"; "largest sale" ]
        ()
    in
    List.iter
      (fun row ->
        Util.Ascii_table.add_row table
          [
            Value.to_string (Tuple.get row 0);
            Value.to_string (Tuple.get row 1);
            Value.to_string (Tuple.get row 2);
            Value.to_string (Tuple.get row 3);
          ])
      (List.sort Tuple.compare (Aggregate_view.read rollup));
    Util.Ascii_table.print table
  in
  print_endline "initial dashboard:";
  print_dashboard ();

  (* Post corrections: bump three sales' amounts (updates in place). *)
  let correct sale_id new_amount =
    match Relation.fetch_by_key sales ~attr:"sale_id" (Value.Int sale_id) with
    | (rid, old_t) :: _ ->
      let new_t =
        Tuple.create [ Tuple.get old_t 0; Tuple.get old_t 1; Value.Int new_amount ]
      in
      let old_new =
        Cost.with_disabled cost (fun () -> Relation.update_batch sales [ (rid, new_t) ])
      in
      let olds = List.map fst old_new and news = List.map snd old_new in
      Aggregate_view.apply_base_delta rollup ~inserted:news ~deleted:olds
    | [] -> ()
  in
  Cost.reset cost;
  correct 42 9_999;
  correct 128 1;
  correct 300 2_500;
  Printf.printf "\n3 corrections folded in for %.0f ms (simulated)\n"
    (Cost.total_ms Cost.default_charges cost);
  print_endline "after corrections (note the new largest sale):";
  print_dashboard ();
  Printf.printf "\nrollup still matches a from-scratch recompute: %b\n"
    (Aggregate_view.matches_recompute rollup);
  Cost.reset cost;
  ignore (Executor.run (Planner.compile sales_by_store));
  Printf.printf "recomputing the join for one dashboard refresh would cost %.0f ms\n"
    (Cost.total_ms Cost.default_charges cost)
