(* Complex objects with shared subobjects — the application the paper's
   introduction motivates: "a form with trim, labels and icons".

   Each form is a database procedure assembling its widgets from a shared
   WIDGETS relation; several forms share the same toolbar region.  Under
   Update Cache with the Rete algorithm, the shared region is maintained
   once (a shared α-memory), and editing one widget incrementally refreshes
   exactly the forms that display it.

   Run with:  dune exec examples/forms_app.exe *)

open Dbproc
open Dbproc.Storage
open Dbproc.Query

let widget_schema =
  Schema.create
    [
      ("wid", Value.TInt);  (* widget id: doubles as the screen region *)
      ("kind", Value.TStr);  (* trim, label, icon, field *)
      ("version", Value.TInt);
    ]

let widget wid kind version =
  Tuple.create [ Value.Int wid; Value.Str kind; Value.Int version ]

let region ~lo ~hi =
  [
    Predicate.term ~attr:0 ~op:Predicate.Ge ~value:(Value.Int lo);
    Predicate.term ~attr:0 ~op:Predicate.Lt ~value:(Value.Int hi);
  ]

let () =
  let cost = Cost.create () in
  let io = Io.direct cost ~page_bytes:4000 in
  let widgets = Relation.create ~io ~name:"WIDGETS" ~schema:widget_schema ~tuple_bytes:100 in
  Relation.load widgets
    (List.init 300 (fun wid ->
         let kind = [| "trim"; "label"; "icon"; "field" |].(wid mod 4) in
         widget wid kind 1));
  Relation.add_btree_index widgets ~attr:"wid" ~entry_bytes:20;

  (* Widgets 0-99 form the standard toolbar every form shares; each form
     adds its own body region. *)
  let toolbar = region ~lo:0 ~hi:100 in
  let form name body_lo body_hi =
    ( View_def.select ~name:(name ^ ".toolbar") ~rel:widgets ~restriction:toolbar,
      View_def.select ~name:(name ^ ".body") ~rel:widgets
        ~restriction:(region ~lo:body_lo ~hi:body_hi) )
  in
  let forms =
    [ form "invoice" 100 160; form "po" 160 220; form "shipping" 220 280 ]
  in

  (* Build one shared Rete network maintaining every form part. *)
  let builder = Rete.Builder.create ~io ~record_bytes:100 () in
  let built =
    List.map
      (fun (toolbar_def, body_def) ->
        let tb = Rete.Builder.add_view builder toolbar_def in
        let body = Rete.Builder.add_view builder body_def in
        (toolbar_def.View_def.name, tb, body_def.View_def.name, body))
      forms
  in
  Printf.printf "3 forms installed; shared toolbar subexpressions reused: %d\n"
    (Rete.Builder.shared_alpha_count builder);
  List.iter
    (fun (tb_name, tb, body_name, body) ->
      Printf.printf "  %-18s %3d widgets   %-14s %3d widgets\n" tb_name
        (Rete.Memory.cardinality (Rete.Network.memory tb.Rete.Builder.result))
        body_name
        (Rete.Memory.cardinality (Rete.Network.memory body.Rete.Builder.result)))
    built;

  (* Edit one toolbar icon: bump its version.  One token propagates; the
     shared toolbar memory refreshes once for all three forms. *)
  let net = Rete.Builder.network builder in
  let old_w = widget 8 "icon" 1 in
  let new_w = widget 8 "icon" 2 in
  (match Relation.fetch_by_key widgets ~attr:"wid" (Value.Int 8) with
  | (rid, _) :: _ ->
    ignore (Cost.with_disabled cost (fun () -> Relation.update_batch widgets [ (rid, new_w) ]))
  | [] -> ());
  Cost.reset cost;
  Rete.Network.apply_delta net ~rel:"WIDGETS" ~inserted:[ new_w ] ~deleted:[ old_w ];
  let charges = Cost.default_charges in
  Printf.printf "\nediting toolbar icon #8: maintenance cost %.0f ms (%d page reads, %d writes)\n"
    (Cost.total_ms charges cost) (Cost.page_reads cost) (Cost.page_writes cost);

  (* Compare with what Always Recompute would pay to redisplay the forms. *)
  Cost.reset cost;
  List.iter
    (fun (toolbar_def, body_def) ->
      ignore (Executor.run (Planner.compile toolbar_def));
      ignore (Executor.run (Planner.compile body_def)))
    forms;
  Printf.printf "redisplaying all forms by recomputation instead: %.0f ms\n"
    (Cost.total_ms charges cost);

  (* Reading the maintained form parts is just sequential page reads. *)
  Cost.reset cost;
  List.iter
    (fun (_, tb, _, body) ->
      ignore (Rete.Memory.read (Rete.Network.memory tb.Rete.Builder.result));
      ignore (Rete.Memory.read (Rete.Network.memory body.Rete.Builder.result)))
    built;
  Printf.printf "redisplaying all forms from the update cache: %.0f ms\n"
    (Cost.total_ms charges cost)
