(* Tests for Dbproc.Util: Yao function, PRNG, locality, statistics and the
   ASCII renderers. *)

open Dbproc.Util

let check_float ?(eps = 1e-9) name expected actual =
  Alcotest.(check (float eps)) name expected actual

(* ---------------------------------------------------------------- Yao *)

let test_yao_exact_small () =
  (* 4 records on 2 blocks, access 1: each block holds 2 records; a single
     access touches exactly one block. *)
  check_float "k=1" 1.0 (Yao.exact ~n:4 ~m:2 ~k:1);
  (* Accessing every record touches every block. *)
  check_float "k=n" 2.0 (Yao.exact ~n:4 ~m:2 ~k:4);
  check_float "k=0" 0.0 (Yao.exact ~n:4 ~m:2 ~k:0)

let test_yao_exact_three_of_four () =
  (* n=4, m=2, k=3: C(2,3) = 0 ways to avoid a block entirely, so both
     blocks are always touched. *)
  check_float "k=3 forces both blocks" 2.0 (Yao.exact ~n:4 ~m:2 ~k:3)

let test_yao_exact_two_of_four () =
  (* n=4, m=2, k=2: P(block untouched) = C(2,2)/C(4,2) = 1/6 per block;
     expected = 2 * (1 - 1/6) = 5/3. *)
  check_float ~eps:1e-9 "k=2" (5.0 /. 3.0) (Yao.exact ~n:4 ~m:2 ~k:2)

let test_yao_exact_invalid () =
  Alcotest.check_raises "m=0" (Invalid_argument "Yao.exact") (fun () ->
      ignore (Yao.exact ~n:4 ~m:0 ~k:1));
  Alcotest.check_raises "k>n" (Invalid_argument "Yao.exact") (fun () ->
      ignore (Yao.exact ~n:4 ~m:2 ~k:5))

let test_cardenas_close_to_exact () =
  (* With a large blocking factor Cardenas' approximation should be within
     a fraction of a page of the exact value. *)
  List.iter
    (fun k ->
      let exact = Yao.exact ~n:10_000 ~m:250 ~k in
      let approx = Yao.cardenas ~m:250.0 ~k:(float_of_int k) in
      if Float.abs (exact -. approx) > 1.0 then
        Alcotest.failf "cardenas k=%d: exact %.3f vs approx %.3f" k exact approx)
    [ 1; 10; 100; 1000; 9999 ]

let test_paper_piecewise () =
  (* k <= 1 returns k itself (fractional expected records). *)
  check_float "k=0.05" 0.05 (Yao.paper ~n:100.0 ~m:2.5 ~k:0.05);
  check_float "k=1" 1.0 (Yao.paper ~n:100.0 ~m:2.5 ~k:1.0);
  check_float "k negative clamps to 0" 0.0 (Yao.paper ~n:100.0 ~m:2.5 ~k:(-0.5));
  (* m < 1: any multi-record object on a fraction of a page costs 1 page. *)
  check_float "m<1" 1.0 (Yao.paper ~n:10.0 ~m:0.25 ~k:5.0);
  (* 1 <= m < 2: min k m. *)
  check_float "m=1.5 k=5" 1.5 (Yao.paper ~n:10.0 ~m:1.5 ~k:5.0);
  check_float "m=1.5 k=1.2" 1.2 (Yao.paper ~n:10.0 ~m:1.5 ~k:1.2);
  (* m >= 2: Cardenas. *)
  check_float ~eps:1e-9 "m=250 k=100"
    (Yao.cardenas ~m:250.0 ~k:100.0)
    (Yao.paper ~n:10_000.0 ~m:250.0 ~k:100.0)

let test_paper_monotone_in_k =
  QCheck.Test.make ~name:"paper yao monotone in k" ~count:200
    QCheck.(pair (float_range 2.0 500.0) (pair (float_range 0.0 100.0) (float_range 0.0 100.0)))
    (fun (m, (k1, k2)) ->
      let lo = Float.min k1 k2 and hi = Float.max k1 k2 in
      Yao.paper ~n:(m *. 40.0) ~m ~k:lo <= Yao.paper ~n:(m *. 40.0) ~m ~k:hi +. 1e-9)

let test_paper_bounded_by_m_and_k =
  QCheck.Test.make ~name:"paper yao bounded by min(m, k) .. for k>=1" ~count:200
    QCheck.(pair (float_range 2.0 500.0) (float_range 1.0 1000.0))
    (fun (m, k) ->
      let y = Yao.paper ~n:(m *. 40.0) ~m ~k in
      y <= m +. 1e-9 && y <= k +. 1e-9 && y >= 0.0)

(* ---------------------------------------------------------------- Prng *)

let test_prng_deterministic () =
  let a = Prng.create 7 and b = Prng.create 7 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.next_int64 a) (Prng.next_int64 b)
  done

let test_prng_different_seeds () =
  let a = Prng.create 1 and b = Prng.create 2 in
  let same = ref 0 in
  for _ = 1 to 50 do
    if Prng.next_int64 a = Prng.next_int64 b then incr same
  done;
  Alcotest.(check int) "streams diverge" 0 !same

let test_prng_float_range () =
  let t = Prng.create 3 in
  for _ = 1 to 1000 do
    let x = Prng.float t in
    if x < 0.0 || x >= 1.0 then Alcotest.failf "float out of range: %f" x
  done

let test_prng_int_range () =
  let t = Prng.create 4 in
  for _ = 1 to 1000 do
    let x = Prng.int t 17 in
    if x < 0 || x >= 17 then Alcotest.failf "int out of range: %d" x
  done

let test_prng_int_invalid () =
  let t = Prng.create 5 in
  Alcotest.check_raises "bound 0" (Invalid_argument "Prng.int") (fun () ->
      ignore (Prng.int t 0))

let test_prng_int_covers_all_values () =
  let t = Prng.create 6 in
  let seen = Array.make 10 false in
  for _ = 1 to 2000 do
    seen.(Prng.int t 10) <- true
  done;
  Alcotest.(check bool) "all residues seen" true (Array.for_all Fun.id seen)

let test_prng_split_independent () =
  let parent = Prng.create 8 in
  let child = Prng.split parent in
  let equal = ref 0 in
  for _ = 1 to 50 do
    if Prng.next_int64 parent = Prng.next_int64 child then incr equal
  done;
  Alcotest.(check int) "split stream differs" 0 !equal

let test_prng_shuffle_permutation () =
  let t = Prng.create 9 in
  let arr = Array.init 100 Fun.id in
  Prng.shuffle t arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 100 Fun.id) sorted

let test_sample_without_replacement () =
  let t = Prng.create 10 in
  let sample = Prng.sample_without_replacement t ~n:50 ~k:20 in
  Alcotest.(check int) "size" 20 (List.length sample);
  Alcotest.(check int) "distinct" 20 (List.length (List.sort_uniq compare sample));
  List.iter (fun i -> if i < 0 || i >= 50 then Alcotest.failf "out of range %d" i) sample

let test_sample_full_range () =
  let t = Prng.create 11 in
  let sample = Prng.sample_without_replacement t ~n:10 ~k:10 in
  Alcotest.(check (list int)) "k=n gives everything" (List.init 10 Fun.id)
    (List.sort compare sample)

let test_sample_invalid () =
  let t = Prng.create 12 in
  Alcotest.check_raises "k>n" (Invalid_argument "Prng.sample_without_replacement") (fun () ->
      ignore (Prng.sample_without_replacement t ~n:3 ~k:4))

(* ------------------------------------------------------------ Locality *)

let test_locality_uniform () =
  let loc = Locality.uniform ~n:10 in
  Alcotest.(check int) "hot = n" 10 (Locality.hot_count loc);
  check_float "prob" 0.1 (Locality.access_probability loc 3)

let test_locality_hot_cold () =
  let loc = Locality.create ~z:0.2 ~n:100 in
  Alcotest.(check int) "hot count" 20 (Locality.hot_count loc);
  (* hot object: (1-z)/hot = 0.8/20; cold: z/(n-hot) = 0.2/80 *)
  check_float "hot prob" 0.04 (Locality.access_probability loc 0);
  check_float "cold prob" 0.0025 (Locality.access_probability loc 99)

let test_locality_probabilities_sum_to_one () =
  let loc = Locality.create ~z:0.05 ~n:40 in
  let total = ref 0.0 in
  for i = 0 to 39 do
    total := !total +. Locality.access_probability loc i
  done;
  check_float ~eps:1e-9 "sums to 1" 1.0 !total

let test_locality_sampling_skew () =
  let loc = Locality.create ~z:0.2 ~n:100 in
  let prng = Prng.create 13 in
  let hot_hits = ref 0 in
  let trials = 20_000 in
  for _ = 1 to trials do
    if Locality.sample loc prng < Locality.hot_count loc then incr hot_hits
  done;
  let frac = float_of_int !hot_hits /. float_of_int trials in
  if Float.abs (frac -. 0.8) > 0.02 then
    Alcotest.failf "hot fraction %.3f, expected ~0.8" frac

let test_locality_x_y () =
  (* Paper: X = n z/(1-z) k/q, Y = n (1-z)/z k/q. *)
  let loc = Locality.create ~z:0.2 ~n:200 in
  check_float ~eps:1e-9 "X" (200.0 *. 0.25 *. 1.0)
    (Locality.expected_updates_between_accesses loc ~hot:true ~updates_per_query:1.0);
  check_float ~eps:1e-9 "Y" (200.0 *. 4.0 *. 1.0)
    (Locality.expected_updates_between_accesses loc ~hot:false ~updates_per_query:1.0)

let test_locality_invalid () =
  Alcotest.check_raises "z out of range"
    (Invalid_argument "Locality.create: z must be in (0,1)") (fun () ->
      ignore (Locality.create ~z:1.5 ~n:10))

(* --------------------------------------------------------------- Stats *)

let test_stats_mean_variance () =
  check_float "mean" 2.0 (Stats.mean [ 1.0; 2.0; 3.0 ]);
  check_float ~eps:1e-9 "variance" (2.0 /. 3.0) (Stats.variance [ 1.0; 2.0; 3.0 ]);
  Alcotest.(check bool) "mean [] is nan" true (Float.is_nan (Stats.mean []))

let test_stats_percentile () =
  let xs = [ 10.0; 20.0; 30.0; 40.0 ] in
  check_float "p0" 10.0 (Stats.percentile 0.0 xs);
  check_float "p100" 40.0 (Stats.percentile 1.0 xs);
  check_float "p50 interpolates" 25.0 (Stats.percentile 0.5 xs)

let test_stats_geometric_mean () =
  check_float ~eps:1e-9 "gmean" 2.0 (Stats.geometric_mean [ 1.0; 2.0; 4.0 ])

let test_stats_relative_error () =
  check_float "rel err" 0.5 (Stats.relative_error ~expected:2.0 ~actual:3.0);
  check_float "both zero" 0.0 (Stats.relative_error ~expected:0.0 ~actual:0.0)

let test_stats_summary () =
  let s = Stats.summarize [ 1.0; 2.0; 3.0; 4.0; 5.0 ] in
  Alcotest.(check int) "count" 5 s.Stats.count;
  check_float "mean" 3.0 s.Stats.mean;
  check_float "min" 1.0 s.Stats.min;
  check_float "max" 5.0 s.Stats.max;
  check_float "p50" 3.0 s.Stats.p50

(* --------------------------------------------------------- Ascii table *)

let test_table_render () =
  let t = Ascii_table.create ~header:[ "name"; "value" ] () in
  Ascii_table.add_row t [ "x"; "1" ];
  Ascii_table.add_row t [ "longer"; "22" ];
  let out = Ascii_table.render t in
  Alcotest.(check bool) "has header" true (String.length out > 0);
  let lines = String.split_on_char '\n' out in
  Alcotest.(check int) "4 lines" 4 (List.length lines);
  (* all lines equal width *)
  let widths = List.map String.length lines in
  Alcotest.(check bool) "aligned" true (List.for_all (( = ) (List.hd widths)) widths)

let test_table_padding_short_row () =
  let t = Ascii_table.create ~header:[ "a"; "b"; "c" ] () in
  Ascii_table.add_row t [ "x" ];
  let out = Ascii_table.render t in
  Alcotest.(check bool) "renders" true (String.length out > 0)

let test_table_too_many_cells () =
  let t = Ascii_table.create ~header:[ "a" ] () in
  Alcotest.check_raises "too many" (Invalid_argument "Ascii_table.add_row: too many cells")
    (fun () -> Ascii_table.add_row t [ "x"; "y" ])

let test_table_float_row () =
  let t = Ascii_table.create ~header:[ "x"; "y" ] () in
  Ascii_table.add_float_row ~decimals:1 t "row" [ Float.nan ];
  let out = Ascii_table.render t in
  Alcotest.(check bool) "nan renders as dash" true
    (String.split_on_char '\n' out |> List.exists (fun l -> String.length l > 0 && l.[String.length l - 1] = '-'))

(* --------------------------------------------------------- Ascii chart *)

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let test_line_plot_renders () =
  let series = [ ("alpha", [ (0.0, 1.0); (1.0, 10.0) ]); ("beta", [ (0.0, 5.0); (1.0, 2.0) ]) ] in
  let out = Ascii_chart.line_plot ~x_label:"x" ~y_label:"y" ~series () in
  Alcotest.(check bool) "mentions legend" true
    (String.length out > 0 && contains out "alpha" && contains out "beta")

let test_line_plot_log_drops_nonpositive () =
  let out =
    Ascii_chart.line_plot ~log_y:true ~x_label:"x" ~y_label:"y"
      ~series:[ ("s", [ (0.0, 0.0); (1.0, 100.0) ]) ]
      ()
  in
  Alcotest.(check bool) "renders without crash" true (String.length out > 0)

let test_line_plot_empty () =
  Alcotest.(check string) "no data" "(no data)"
    (Ascii_chart.line_plot ~x_label:"x" ~y_label:"y" ~series:[ ("s", []) ] ())

let test_region_map () =
  let out =
    Ascii_chart.region_map ~x_label:"f" ~y_label:"P" ~x_range:(0.001, 0.1) ~y_range:(0.0, 1.0)
      ~log_x:true
      ~classify:(fun ~x ~y -> if y > 0.5 then 'A' else if x > 0.01 then 'B' else 'C')
      ()
  in
  Alcotest.(check bool) "contains all classes" true
    (contains out "A" && contains out "B" && contains out "C")

(* -------------------------------------------------- Interval_index *)

module Int_intervals = Interval_index.Make (Int)

let test_interval_basic () =
  let idx = Int_intervals.create () in
  Int_intervals.add idx ~lo:(Int_intervals.Incl 1) ~hi:(Int_intervals.Excl 5) "a";
  Int_intervals.add idx ~lo:(Int_intervals.Incl 3) ~hi:(Int_intervals.Incl 8) "b";
  Int_intervals.add idx ~lo:Int_intervals.Neg_inf ~hi:(Int_intervals.Incl 0) "c";
  Alcotest.(check (list string)) "stab 4" [ "a"; "b" ]
    (List.sort compare (Int_intervals.stab idx 4));
  Alcotest.(check (list string)) "stab 5 (a excl)" [ "b" ] (Int_intervals.stab idx 5);
  Alcotest.(check (list string)) "stab -3" [ "c" ] (Int_intervals.stab idx (-3));
  Alcotest.(check (list string)) "stab 100" [] (Int_intervals.stab idx 100)

let test_interval_unbounded_both () =
  let idx = Int_intervals.create () in
  Int_intervals.add idx ~lo:Int_intervals.Neg_inf ~hi:Int_intervals.Pos_inf "all";
  Int_intervals.add idx ~lo:(Int_intervals.Incl 0) ~hi:(Int_intervals.Incl 1) "x";
  Alcotest.(check (list string)) "covers everything" [ "all" ] (Int_intervals.stab idx 99);
  Alcotest.(check (list string)) "both" [ "all"; "x" ]
    (List.sort compare (Int_intervals.stab idx 0))

let test_interval_empty_never_matches () =
  let idx = Int_intervals.create () in
  Int_intervals.add idx ~lo:(Int_intervals.Incl 5) ~hi:(Int_intervals.Excl 5) "empty";
  Int_intervals.add idx ~lo:(Int_intervals.Excl 5) ~hi:(Int_intervals.Incl 5) "empty2";
  Int_intervals.add idx ~lo:(Int_intervals.Incl 7) ~hi:(Int_intervals.Incl 3) "inverted";
  Alcotest.(check (list string)) "no matches" [] (Int_intervals.stab idx 5)

let test_interval_remove () =
  let idx = Int_intervals.create () in
  Int_intervals.add idx ~lo:(Int_intervals.Incl 0) ~hi:(Int_intervals.Incl 9) "a";
  Int_intervals.add idx ~lo:(Int_intervals.Incl 0) ~hi:(Int_intervals.Incl 9) "b";
  Alcotest.(check int) "removed one" 1 (Int_intervals.remove idx (( = ) "a"));
  Alcotest.(check (list string)) "b remains" [ "b" ] (Int_intervals.stab idx 4);
  Alcotest.(check int) "size" 1 (Int_intervals.size idx)

let test_interval_invalid_bounds () =
  let idx = Int_intervals.create () in
  Alcotest.(check bool) "lo = Pos_inf rejected" true
    (try
       Int_intervals.add idx ~lo:Int_intervals.Pos_inf ~hi:Int_intervals.Pos_inf "x";
       false
     with Invalid_argument _ -> true)

let interval_index_matches_naive =
  let bound_gen =
    QCheck.Gen.(
      oneof
        [
          return `Inf;
          map (fun v -> `Incl (v - 25)) (int_bound 50);
          map (fun v -> `Excl (v - 25)) (int_bound 50);
        ])
  in
  let gen = QCheck.Gen.(pair (list_size (int_range 0 40) (pair bound_gen bound_gen)) (list_size (int_range 1 30) (int_bound 60))) in
  QCheck.Test.make ~name:"interval index stab matches naive filter" ~count:300
    (QCheck.make gen)
    (fun (specs, queries) ->
      let idx = Int_intervals.create () in
      let naive = ref [] in
      List.iteri
        (fun i (lo_s, hi_s) ->
          let lo =
            match lo_s with
            | `Inf -> Int_intervals.Neg_inf
            | `Incl v -> Int_intervals.Incl v
            | `Excl v -> Int_intervals.Excl v
          in
          let hi =
            match hi_s with
            | `Inf -> Int_intervals.Pos_inf
            | `Incl v -> Int_intervals.Incl v
            | `Excl v -> Int_intervals.Excl v
          in
          Int_intervals.add idx ~lo ~hi i;
          naive := (lo, hi, i) :: !naive)
        specs;
      List.for_all
        (fun q0 ->
          let q = q0 - 30 in
          let got = List.sort compare (Int_intervals.stab idx q) in
          let expected =
            List.filter_map
              (fun (lo, hi, i) -> if Int_intervals.covers ~lo ~hi q then Some i else None)
              !naive
            |> List.sort compare
          in
          got = expected)
        queries)

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "util"
    [
      ( "yao",
        [
          Alcotest.test_case "exact small" `Quick test_yao_exact_small;
          Alcotest.test_case "exact 3 of 4" `Quick test_yao_exact_three_of_four;
          Alcotest.test_case "exact 2 of 4" `Quick test_yao_exact_two_of_four;
          Alcotest.test_case "exact invalid args" `Quick test_yao_exact_invalid;
          Alcotest.test_case "cardenas ~ exact" `Quick test_cardenas_close_to_exact;
          Alcotest.test_case "paper piecewise rules" `Quick test_paper_piecewise;
          qc test_paper_monotone_in_k;
          qc test_paper_bounded_by_m_and_k;
        ] );
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "seeds differ" `Quick test_prng_different_seeds;
          Alcotest.test_case "float in [0,1)" `Quick test_prng_float_range;
          Alcotest.test_case "int in range" `Quick test_prng_int_range;
          Alcotest.test_case "int invalid bound" `Quick test_prng_int_invalid;
          Alcotest.test_case "int covers values" `Quick test_prng_int_covers_all_values;
          Alcotest.test_case "split independent" `Quick test_prng_split_independent;
          Alcotest.test_case "shuffle is permutation" `Quick test_prng_shuffle_permutation;
          Alcotest.test_case "sample w/o replacement" `Quick test_sample_without_replacement;
          Alcotest.test_case "sample k=n" `Quick test_sample_full_range;
          Alcotest.test_case "sample invalid" `Quick test_sample_invalid;
        ] );
      ( "locality",
        [
          Alcotest.test_case "uniform" `Quick test_locality_uniform;
          Alcotest.test_case "hot/cold split" `Quick test_locality_hot_cold;
          Alcotest.test_case "probabilities sum to 1" `Quick test_locality_probabilities_sum_to_one;
          Alcotest.test_case "sampling skew" `Quick test_locality_sampling_skew;
          Alcotest.test_case "X and Y formulas" `Quick test_locality_x_y;
          Alcotest.test_case "invalid z" `Quick test_locality_invalid;
        ] );
      ( "stats",
        [
          Alcotest.test_case "mean/variance" `Quick test_stats_mean_variance;
          Alcotest.test_case "percentile" `Quick test_stats_percentile;
          Alcotest.test_case "geometric mean" `Quick test_stats_geometric_mean;
          Alcotest.test_case "relative error" `Quick test_stats_relative_error;
          Alcotest.test_case "summary" `Quick test_stats_summary;
        ] );
      ( "ascii",
        [
          Alcotest.test_case "table render" `Quick test_table_render;
          Alcotest.test_case "table pads short rows" `Quick test_table_padding_short_row;
          Alcotest.test_case "table rejects long rows" `Quick test_table_too_many_cells;
          Alcotest.test_case "table float rows" `Quick test_table_float_row;
          Alcotest.test_case "line plot" `Quick test_line_plot_renders;
          Alcotest.test_case "line plot log y" `Quick test_line_plot_log_drops_nonpositive;
          Alcotest.test_case "line plot empty" `Quick test_line_plot_empty;
          Alcotest.test_case "region map" `Quick test_region_map;
        ] );
      ( "interval_index",
        [
          Alcotest.test_case "basic stab" `Quick test_interval_basic;
          Alcotest.test_case "unbounded intervals" `Quick test_interval_unbounded_both;
          Alcotest.test_case "empty intervals" `Quick test_interval_empty_never_matches;
          Alcotest.test_case "remove" `Quick test_interval_remove;
          Alcotest.test_case "invalid bounds" `Quick test_interval_invalid_bounds;
          qc interval_index_matches_naive;
        ] );
    ]
