(* Tests for Dbproc.Avm: the differential identity
   V(A ∪ a − d, B) = V(A,B) ∪ V(a,B) − V(d,B), cache refresh charging, and
   a randomized equivalence property against recomputation. *)

open Dbproc
open Dbproc.Storage
open Dbproc.Query
open Dbproc.Avm

let r_schema = Schema.create [ ("k", Value.TInt); ("v", Value.TInt) ]
let s_schema = Schema.create [ ("b", Value.TInt); ("w", Value.TInt) ]

type fixture = { cost : Cost.t; r : Relation.t; s : Relation.t }

let make_fixture () =
  let cost = Cost.create () in
  let io = Io.direct cost ~page_bytes:400 in
  let r = Relation.create ~io ~name:"R" ~schema:r_schema ~tuple_bytes:100 in
  Relation.load r (List.init 40 (fun i -> Tuple.create [ Value.Int i; Value.Int (i mod 10) ]));
  Relation.add_btree_index r ~attr:"k" ~entry_bytes:20;
  let s = Relation.create ~io ~name:"S" ~schema:s_schema ~tuple_bytes:100 in
  Relation.load s (List.init 10 (fun b -> Tuple.create [ Value.Int b; Value.Int (b * 100) ]));
  Relation.add_hash_index ~primary:true s ~attr:"b" ~entry_bytes:100 ~expected_entries:10;
  { cost; r; s }

let interval schema attr lo hi =
  let pos = Schema.index_of schema attr in
  [
    Predicate.term ~attr:pos ~op:Predicate.Ge ~value:(Value.Int lo);
    Predicate.term ~attr:pos ~op:Predicate.Lt ~value:(Value.Int hi);
  ]

let select_def fx lo hi =
  View_def.select ~name:"V" ~rel:fx.r ~restriction:(interval r_schema "k" lo hi)

let join_def fx lo hi =
  View_def.join (select_def fx lo hi) ~rel:fx.s ~restriction:Predicate.always_true ~left:"R.v"
    ~op:Predicate.Eq ~right:"b"

(* Survivors of the base restriction among a tuple list. *)
let screen (def : View_def.t) tuples =
  List.filter (Predicate.eval def.View_def.base.restriction) tuples

let test_initial_contents () =
  let fx = make_fixture () in
  let view = Materialized_view.create ~record_bytes:100 (select_def fx 5 15) in
  Alcotest.(check int) "10 tuples" 10 (Materialized_view.cardinality view);
  Alcotest.(check bool) "matches recompute" true (Materialized_view.matches_recompute view)

let test_read_charges_pages () =
  let fx = make_fixture () in
  let view = Materialized_view.create ~record_bytes:100 (select_def fx 0 12) in
  Cost.reset fx.cost;
  let tuples = Materialized_view.read view in
  Alcotest.(check int) "12 tuples" 12 (List.length tuples);
  (* 12 tuples at 4/page = 3 pages *)
  Alcotest.(check int) "3 page reads" 3 (Cost.page_reads fx.cost)

let apply_update fx view (def : View_def.t) changes =
  (* changes: (rid, new tuple). Apply to the base, then screen old/new
     against the restriction and feed survivors to the view. *)
  let old_new =
    Cost.with_disabled fx.cost (fun () -> Relation.update_batch fx.r changes)
  in
  let olds = List.map fst old_new and news = List.map snd old_new in
  Materialized_view.apply_base_delta view ~inserted:(screen def news)
    ~deleted:(screen def olds)

let rid_of fx k =
  match Relation.fetch_by_key fx.r ~attr:"k" (Value.Int k) with
  | (rid, _) :: _ -> rid
  | [] -> Alcotest.failf "no tuple with k=%d" k

let test_select_insert_into_view () =
  let fx = make_fixture () in
  let def = select_def fx 5 15 in
  let view = Materialized_view.create ~record_bytes:100 def in
  (* move tuple k=20 into the interval by rewriting its key to 7 *)
  let rid = Cost.with_disabled fx.cost (fun () -> rid_of fx 20) in
  apply_update fx view def [ (rid, Tuple.create [ Value.Int 7; Value.Int 0 ]) ];
  Alcotest.(check int) "now 11 tuples" 11 (Materialized_view.cardinality view);
  Alcotest.(check bool) "matches recompute" true (Materialized_view.matches_recompute view)

let test_select_delete_from_view () =
  let fx = make_fixture () in
  let def = select_def fx 5 15 in
  let view = Materialized_view.create ~record_bytes:100 def in
  let rid = Cost.with_disabled fx.cost (fun () -> rid_of fx 7) in
  apply_update fx view def [ (rid, Tuple.create [ Value.Int 99; Value.Int 7 ]) ];
  Alcotest.(check int) "now 9 tuples" 9 (Materialized_view.cardinality view);
  Alcotest.(check bool) "matches recompute" true (Materialized_view.matches_recompute view)

let test_update_within_view () =
  let fx = make_fixture () in
  let def = select_def fx 5 15 in
  let view = Materialized_view.create ~record_bytes:100 def in
  (* k stays in interval but v changes: delete+insert in place *)
  let rid = Cost.with_disabled fx.cost (fun () -> rid_of fx 7) in
  apply_update fx view def [ (rid, Tuple.create [ Value.Int 7; Value.Int 777 ]) ];
  Alcotest.(check int) "still 10 tuples" 10 (Materialized_view.cardinality view);
  Alcotest.(check bool) "matches recompute" true (Materialized_view.matches_recompute view)

let test_join_view_maintenance () =
  let fx = make_fixture () in
  let def = join_def fx 5 15 in
  let view = Materialized_view.create ~record_bytes:100 def in
  Alcotest.(check int) "10 joined" 10 (Materialized_view.cardinality view);
  let rid = Cost.with_disabled fx.cost (fun () -> rid_of fx 20) in
  apply_update fx view def [ (rid, Tuple.create [ Value.Int 6; Value.Int 3 ]) ];
  Alcotest.(check int) "11 joined" 11 (Materialized_view.cardinality view);
  Alcotest.(check bool) "matches recompute" true (Materialized_view.matches_recompute view)

let test_delta_charges_c3 () =
  let fx = make_fixture () in
  let def = select_def fx 5 15 in
  let view = Materialized_view.create ~record_bytes:100 def in
  Cost.reset fx.cost;
  let rid = Cost.with_disabled fx.cost (fun () -> rid_of fx 7) in
  apply_update fx view def [ (rid, Tuple.create [ Value.Int 8; Value.Int 0 ]) ];
  (* old (k=7) and new (k=8) both survive the restriction: 2 delta ops *)
  Alcotest.(check int) "c3 per survivor" 2 (Cost.delta_ops fx.cost)

let test_refresh_batches_pages () =
  let fx = make_fixture () in
  let def = select_def fx 0 4 in
  (* view = 4 tuples on exactly 1 page *)
  let view = Materialized_view.create ~record_bytes:100 def in
  Cost.reset fx.cost;
  let rid0 = Cost.with_disabled fx.cost (fun () -> rid_of fx 0) in
  let rid1 = Cost.with_disabled fx.cost (fun () -> rid_of fx 1) in
  apply_update fx view def
    [
      (rid0, Tuple.create [ Value.Int 0; Value.Int 50 ]);
      (rid1, Tuple.create [ Value.Int 1; Value.Int 51 ]);
    ];
  (* Both view changes land on the single view page: 1 read + 1 write. *)
  Alcotest.(check int) "one page read" 1 (Cost.page_reads fx.cost);
  Alcotest.(check int) "one page write" 1 (Cost.page_writes fx.cost);
  Alcotest.(check bool) "matches recompute" true (Materialized_view.matches_recompute view)

let test_recompute_refresh () =
  let fx = make_fixture () in
  let def = select_def fx 5 15 in
  let view = Materialized_view.create ~record_bytes:100 def in
  (* Corrupt by applying a bogus delta, then recompute_refresh repairs. *)
  Materialized_view.apply_base_delta view
    ~inserted:[ Tuple.create [ Value.Int 6; Value.Int 999 ] ]
    ~deleted:[];
  Alcotest.(check bool) "diverged" false (Materialized_view.matches_recompute view);
  Cost.reset fx.cost;
  Materialized_view.recompute_refresh view;
  Alcotest.(check bool) "repaired" true (Materialized_view.matches_recompute view);
  (* rewrite charges read+write per page of the new contents (10 tuples = 3 pages) *)
  Alcotest.(check bool) "writes charged" true (Cost.page_writes fx.cost >= 3)

let test_delete_of_absent_tuple_ignored () =
  let fx = make_fixture () in
  let def = select_def fx 5 15 in
  let view = Materialized_view.create ~record_bytes:100 def in
  Materialized_view.apply_base_delta view ~inserted:[]
    ~deleted:[ Tuple.create [ Value.Int 6; Value.Int 12345 ] ];
  (* tuple <6, 12345> was never in the view; count unchanged *)
  Alcotest.(check int) "unchanged" 10 (Materialized_view.cardinality view)

let avm_random_updates_property =
  (* Random in-place updates; AVM-maintained view must equal recompute. *)
  QCheck.Test.make ~name:"AVM equals recompute under random updates" ~count:50
    QCheck.(list_of_size (Gen.int_range 1 15) (pair (int_bound 39) (int_bound 60)))
    (fun updates ->
      let fx = make_fixture () in
      let def = join_def fx 5 20 in
      let view = Materialized_view.create ~record_bytes:100 def in
      List.iter
        (fun (victim_k, new_k) ->
          match
            Cost.with_disabled fx.cost (fun () ->
                Relation.fetch_by_key fx.r ~attr:"k" (Value.Int victim_k))
          with
          | [] -> () (* key moved away by an earlier update *)
          | (rid, old_tuple) :: _ ->
            let new_tuple =
              Tuple.create [ Value.Int new_k; Tuple.get old_tuple 1 ]
            in
            apply_update fx view def [ (rid, new_tuple) ])
        updates;
      Materialized_view.matches_recompute view)

(* -------------------------------------------------- Dynamic policy *)

let test_dynamic_policy_recomputes_on_big_delta () =
  let fx = make_fixture () in
  let def = select_def fx 5 15 in
  let view =
    Materialized_view.create ~policy:(Materialized_view.Dynamic 1.0) ~record_bytes:100 def
  in
  Alcotest.(check int) "no recomputes yet" 0 (Materialized_view.maintenance_recomputes view);
  (* Shift every interval tuple by 3: 10 old survivors + 7 new survivors
     = 17 delta tuples > 10 stored -> the dynamic policy recomputes. *)
  let changes =
    List.filter_map
      (fun k ->
        match
          Cost.with_disabled fx.cost (fun () ->
              Relation.fetch_by_key fx.r ~attr:"k" (Value.Int k))
        with
        | (rid, t) :: _ -> Some (rid, Tuple.create [ Value.Int (k + 3); Tuple.get t 1 ])
        | [] -> None)
      [ 5; 6; 7; 8; 9; 10; 11; 12; 13; 14 ]
  in
  apply_update fx view def changes;
  Alcotest.(check bool) "policy fell back to recompute" true
    (Materialized_view.maintenance_recomputes view >= 1);
  Alcotest.(check bool) "contents correct" true (Materialized_view.matches_recompute view)

let test_dynamic_policy_incremental_on_small_delta () =
  let fx = make_fixture () in
  let def = select_def fx 5 15 in
  let view =
    Materialized_view.create ~policy:(Materialized_view.Dynamic 1.0) ~record_bytes:100 def
  in
  let rid = Cost.with_disabled fx.cost (fun () -> rid_of fx 7) in
  apply_update fx view def [ (rid, Tuple.create [ Value.Int 99; Value.Int 7 ]) ];
  Alcotest.(check int) "stayed incremental" 0 (Materialized_view.maintenance_recomputes view);
  Alcotest.(check bool) "contents correct" true (Materialized_view.matches_recompute view)

let test_static_policy_never_recomputes () =
  let fx = make_fixture () in
  let def = select_def fx 0 40 in
  let view = Materialized_view.create ~record_bytes:100 def in
  Alcotest.(check bool) "default policy static" true
    (Materialized_view.policy view = Materialized_view.Static);
  let changes =
    Cost.with_disabled fx.cost (fun () ->
        let acc = ref [] in
        Relation.scan fx.r ~f:(fun rid t ->
            acc :=
              (rid, Tuple.create [ Value.Int (1000 + List.length !acc); Tuple.get t 1 ])
              :: !acc);
        !acc)
  in
  apply_update fx view def changes;
  Alcotest.(check int) "static never recomputes" 0
    (Materialized_view.maintenance_recomputes view);
  Alcotest.(check bool) "still correct" true (Materialized_view.matches_recompute view)

(* -------------------------------------------- Inner-source deltas *)

let rid_in rel key_attr k =
  match Relation.fetch_by_key rel ~attr:key_attr (Value.Int k) with
  | (rid, _) :: _ -> rid
  | [] -> Alcotest.failf "no tuple with %s=%d" key_attr k

let test_source_delta_inner_insert_effect () =
  let fx = make_fixture () in
  let def = join_def fx 0 20 in
  let view = Materialized_view.create ~record_bytes:100 def in
  Alcotest.(check int) "20 initially" 20 (Materialized_view.cardinality view);
  (* S is hash-primary on b; modify tuple b=3's payload w in place. *)
  let rid = Cost.with_disabled fx.cost (fun () -> rid_in fx.s "b" 3) in
  let old_t = Cost.with_disabled fx.cost (fun () -> Relation.get fx.s rid) in
  let new_t = Tuple.create [ Value.Int 3; Value.Int 999 ] in
  ignore (Cost.with_disabled fx.cost (fun () -> Relation.update_batch fx.s [ (rid, new_t) ]));
  Materialized_view.apply_source_delta view ~source_index:1 ~inserted:[ new_t ]
    ~deleted:[ old_t ];
  Alcotest.(check int) "still 20" 20 (Materialized_view.cardinality view);
  Alcotest.(check bool) "matches recompute" true (Materialized_view.matches_recompute view)

let test_source_delta_index_zero_is_base () =
  let fx = make_fixture () in
  let def = select_def fx 5 15 in
  let view = Materialized_view.create ~record_bytes:100 def in
  let rid = Cost.with_disabled fx.cost (fun () -> rid_of fx 20) in
  let new_t = Tuple.create [ Value.Int 7; Value.Int 0 ] in
  let old_new =
    Cost.with_disabled fx.cost (fun () -> Relation.update_batch fx.r [ (rid, new_t) ])
  in
  let olds = List.map fst old_new and news = List.map snd old_new in
  Materialized_view.apply_source_delta view ~source_index:0 ~inserted:(screen def news)
    ~deleted:(screen def olds);
  Alcotest.(check int) "11 tuples" 11 (Materialized_view.cardinality view)

let test_source_delta_bad_index () =
  let fx = make_fixture () in
  let view = Materialized_view.create ~record_bytes:100 (join_def fx 0 5) in
  Alcotest.(check bool) "index out of range" true
    (try
       Materialized_view.apply_source_delta view ~source_index:2 ~inserted:[] ~deleted:[];
       false
     with Invalid_argument _ -> true)

let test_source_delta_charges_prefix_evaluation () =
  let fx = make_fixture () in
  let def = join_def fx 0 20 in
  let view = Materialized_view.create ~record_bytes:100 def in
  let old_t = Cost.with_disabled fx.cost (fun () -> Relation.get fx.s (rid_in fx.s "b" 3)) in
  Cost.reset fx.cost;
  Materialized_view.apply_source_delta view ~source_index:1
    ~inserted:[ Tuple.create [ Value.Int 3; Value.Int 7 ] ]
    ~deleted:[ old_t ];
  (* evaluating the 20-tuple prefix costs at least 20 screens *)
  Alcotest.(check bool) "prefix screened" true (Cost.cpu_screens fx.cost >= 20);
  Alcotest.(check int) "C3 per delta tuple" 2 (Cost.delta_ops fx.cost)

let source_delta_random_property =
  QCheck.Test.make ~name:"inner-source AVM equals recompute under random S updates" ~count:40
    QCheck.(list_of_size (Gen.int_range 1 10) (pair (int_bound 9) (int_bound 500)))
    (fun updates ->
      let fx = make_fixture () in
      let def = join_def fx 0 30 in
      let view = Materialized_view.create ~record_bytes:100 def in
      List.iter
        (fun (b, new_w) ->
          match
            Cost.with_disabled fx.cost (fun () ->
                Relation.fetch_by_key fx.s ~attr:"b" (Value.Int b))
          with
          | (rid, old_t) :: _ ->
            let new_t = Tuple.create [ Value.Int b; Value.Int new_w ] in
            ignore
              (Cost.with_disabled fx.cost (fun () ->
                   Relation.update_batch fx.s [ (rid, new_t) ]));
            Materialized_view.apply_source_delta view ~source_index:1 ~inserted:[ new_t ]
              ~deleted:[ old_t ]
          | [] -> ())
        updates;
      Materialized_view.matches_recompute view)

(* --------------------------------------------------- Aggregate views *)

let agg_fixture () =
  let fx = make_fixture () in
  (* group the joined view by S.w, count and sum R.k, min/max R.k *)
  let def = join_def fx 0 40 in
  let schema = View_def.schema def in
  let k_pos = Schema.index_of schema "R.k" in
  let w_pos = Schema.index_of schema "S.w" in
  let agg =
    Aggregate_view.create ~record_bytes:100 ~group_by:[ w_pos ]
      ~aggs:
        [ Aggregate_view.Count; Aggregate_view.Sum k_pos; Aggregate_view.Min k_pos;
          Aggregate_view.Max k_pos ]
      def
  in
  (fx, def, agg)

let test_agg_initial () =
  let _, _, agg = agg_fixture () in
  (* 40 R rows over 10 S groups: 4 rows per group *)
  Alcotest.(check int) "10 groups" 10 (Aggregate_view.group_count agg);
  Alcotest.(check bool) "matches recompute" true (Aggregate_view.matches_recompute agg);
  match Aggregate_view.find_group agg [ Value.Int 0 ] with
  | Some row ->
    (* group w=0 holds k in {0,10,20,30} *)
    Alcotest.(check bool) "count 4" true (Value.equal (Tuple.get row 1) (Value.Int 4));
    Alcotest.(check bool) "sum 60" true (Value.equal (Tuple.get row 2) (Value.Float 60.0));
    Alcotest.(check bool) "min 0" true (Value.equal (Tuple.get row 3) (Value.Int 0));
    Alcotest.(check bool) "max 30" true (Value.equal (Tuple.get row 4) (Value.Int 30))
  | None -> Alcotest.fail "group w=0 missing"

let agg_update fx def agg k new_tuple =
  let rid = Cost.with_disabled fx.cost (fun () -> rid_of fx k) in
  let old_new =
    Cost.with_disabled fx.cost (fun () -> Relation.update_batch fx.r [ (rid, new_tuple) ])
  in
  let olds = List.map fst old_new and news = List.map snd old_new in
  Aggregate_view.apply_base_delta agg ~inserted:(screen def news) ~deleted:(screen def olds)

let test_agg_extremum_deletion () =
  let fx, def, agg = agg_fixture () in
  (* k=30 is the max of group w=0; moving it out of range must re-derive
     the max as 20. *)
  agg_update fx def agg 30 (Tuple.create [ Value.Int 1000; Value.Int 0 ]);
  (match Aggregate_view.find_group agg [ Value.Int 0 ] with
  | Some row ->
    Alcotest.(check bool) "count 3" true (Value.equal (Tuple.get row 1) (Value.Int 3));
    Alcotest.(check bool) "max re-derived" true (Value.equal (Tuple.get row 4) (Value.Int 20))
  | None -> Alcotest.fail "group missing");
  Alcotest.(check bool) "matches recompute" true (Aggregate_view.matches_recompute agg)

let test_agg_group_appears_and_disappears () =
  let fx, def, agg = agg_fixture () in
  (* R.v determines the S partner hence the group; rewriting k keeps the
     group but rewriting both k and v moves a row between groups. *)
  agg_update fx def agg 7 (Tuple.create [ Value.Int 7; Value.Int 3 ]);
  (* row k=7 moves from group w=700 to w=300: counts shift *)
  (match Aggregate_view.find_group agg [ Value.Int 300 ] with
  | Some row -> Alcotest.(check bool) "count 5" true (Value.equal (Tuple.get row 1) (Value.Int 5))
  | None -> Alcotest.fail "grown group missing");
  (match Aggregate_view.find_group agg [ Value.Int 700 ] with
  | Some row -> Alcotest.(check bool) "count 3" true (Value.equal (Tuple.get row 1) (Value.Int 3))
  | None -> Alcotest.fail "shrunk group missing");
  Alcotest.(check bool) "matches recompute" true (Aggregate_view.matches_recompute agg)

let test_agg_read_charges_pages () =
  let fx, _, agg = agg_fixture () in
  Cost.reset fx.cost;
  let rows = Aggregate_view.read agg in
  Alcotest.(check int) "10 rows" 10 (List.length rows);
  (* 10 rows at 4/page = 3 pages *)
  Alcotest.(check int) "3 reads" 3 (Cost.page_reads fx.cost)

let test_agg_rejects_empty () =
  let fx = make_fixture () in
  Alcotest.(check bool) "no aggs rejected" true
    (try
       ignore (Aggregate_view.create ~record_bytes:100 ~group_by:[ 0 ] ~aggs:[] (select_def fx 0 5));
       false
     with Invalid_argument _ -> true)

let agg_random_property =
  QCheck.Test.make ~name:"aggregate view equals recompute under random updates" ~count:40
    QCheck.(list_of_size (Gen.int_range 1 12) (pair (int_bound 39) (int_bound 60)))
    (fun updates ->
      let fx, def, agg = agg_fixture () in
      List.iter
        (fun (victim, new_k) ->
          match
            Cost.with_disabled fx.cost (fun () ->
                Relation.fetch_by_key fx.r ~attr:"k" (Value.Int victim))
          with
          | (rid, old_t) :: _ ->
            let new_t = Tuple.create [ Value.Int new_k; Tuple.get old_t 1 ] in
            let old_new =
              Cost.with_disabled fx.cost (fun () ->
                  Relation.update_batch fx.r [ (rid, new_t) ])
            in
            let olds = List.map fst old_new and news = List.map snd old_new in
            Aggregate_view.apply_base_delta agg ~inserted:(screen def news)
              ~deleted:(screen def olds)
          | [] -> ())
        updates;
      Aggregate_view.matches_recompute agg)

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "avm"
    [
      ( "materialized_view",
        [
          Alcotest.test_case "initial contents" `Quick test_initial_contents;
          Alcotest.test_case "read charges pages" `Quick test_read_charges_pages;
          Alcotest.test_case "insert into view" `Quick test_select_insert_into_view;
          Alcotest.test_case "delete from view" `Quick test_select_delete_from_view;
          Alcotest.test_case "update within view" `Quick test_update_within_view;
          Alcotest.test_case "join view maintenance" `Quick test_join_view_maintenance;
          Alcotest.test_case "C3 charged per survivor" `Quick test_delta_charges_c3;
          Alcotest.test_case "refresh batches pages" `Quick test_refresh_batches_pages;
          Alcotest.test_case "recompute refresh" `Quick test_recompute_refresh;
          Alcotest.test_case "absent delete ignored" `Quick test_delete_of_absent_tuple_ignored;
          qc avm_random_updates_property;
        ] );
      ( "dynamic_policy",
        [
          Alcotest.test_case "recomputes on big delta" `Quick
            test_dynamic_policy_recomputes_on_big_delta;
          Alcotest.test_case "incremental on small delta" `Quick
            test_dynamic_policy_incremental_on_small_delta;
          Alcotest.test_case "static never recomputes" `Quick test_static_policy_never_recomputes;
        ] );
      ( "source_delta",
        [
          Alcotest.test_case "inner update in place" `Quick test_source_delta_inner_insert_effect;
          Alcotest.test_case "index 0 = base" `Quick test_source_delta_index_zero_is_base;
          Alcotest.test_case "bad index" `Quick test_source_delta_bad_index;
          Alcotest.test_case "prefix evaluation charged" `Quick
            test_source_delta_charges_prefix_evaluation;
          qc source_delta_random_property;
        ] );
      ( "aggregate_view",
        [
          Alcotest.test_case "initial groups" `Quick test_agg_initial;
          Alcotest.test_case "extremum deletion" `Quick test_agg_extremum_deletion;
          Alcotest.test_case "group migration" `Quick test_agg_group_appears_and_disappears;
          Alcotest.test_case "read charges pages" `Quick test_agg_read_charges_pages;
          Alcotest.test_case "rejects empty aggs" `Quick test_agg_rejects_empty;
          qc agg_random_property;
        ] );
    ]
