(* Tests for Dbproc.Relation_: values, schemas, tuples, predicates,
   relations with access methods, catalog. *)

open Dbproc
open Dbproc.Storage

(* ---------------------------------------------------------------- Value *)

let test_value_compare () =
  Alcotest.(check bool) "int order" true (Value.compare (Value.Int 1) (Value.Int 2) < 0);
  Alcotest.(check bool) "str order" true
    (Value.compare (Value.Str "a") (Value.Str "b") < 0);
  Alcotest.(check bool) "equal" true (Value.equal (Value.Float 1.5) (Value.Float 1.5));
  Alcotest.(check bool) "cross-type ordered by type" true
    (Value.compare (Value.Int 999) (Value.Str "a") < 0)

let test_value_type_of () =
  Alcotest.(check bool) "int" true (Value.type_of (Value.Int 1) = Value.TInt);
  Alcotest.(check bool) "float" true (Value.type_of (Value.Float 1.0) = Value.TFloat);
  Alcotest.(check bool) "str" true (Value.type_of (Value.Str "s") = Value.TStr)

let test_value_to_string () =
  Alcotest.(check string) "int" "42" (Value.to_string (Value.Int 42));
  Alcotest.(check string) "str quoted" "\"hi\"" (Value.to_string (Value.Str "hi"))

(* --------------------------------------------------------------- Schema *)

let emp_schema =
  Schema.create
    [
      ("name", Value.TStr);
      ("age", Value.TInt);
      ("dept", Value.TStr);
      ("salary", Value.TInt);
      ("job", Value.TStr);
    ]

let test_schema_basics () =
  Alcotest.(check int) "arity" 5 (Schema.arity emp_schema);
  Alcotest.(check int) "index_of" 2 (Schema.index_of emp_schema "dept");
  Alcotest.(check bool) "mem" true (Schema.mem emp_schema "job");
  Alcotest.(check bool) "not mem" false (Schema.mem emp_schema "floor");
  Alcotest.(check string) "attr name" "salary" (Schema.attr emp_schema 3).Schema.name

let test_schema_duplicate_rejected () =
  Alcotest.check_raises "duplicate" (Invalid_argument "Schema: duplicate attribute \"x\"")
    (fun () -> ignore (Schema.create [ ("x", Value.TInt); ("x", Value.TStr) ]))

let test_schema_empty_rejected () =
  Alcotest.check_raises "empty" (Invalid_argument "Schema.create: empty") (fun () ->
      ignore (Schema.create []))

let test_schema_qualify_concat () =
  let dept = Schema.create [ ("dname", Value.TStr); ("floor", Value.TInt) ] in
  let joined = Schema.concat (Schema.qualify ~prefix:"EMP" emp_schema) (Schema.qualify ~prefix:"DEPT" dept) in
  Alcotest.(check int) "arity" 7 (Schema.arity joined);
  Alcotest.(check int) "qualified lookup" 5 (Schema.index_of joined "DEPT.dname")

let test_schema_concat_clash () =
  Alcotest.check_raises "clash" (Invalid_argument "Schema: duplicate attribute \"name\"")
    (fun () -> ignore (Schema.concat emp_schema emp_schema))

(* ---------------------------------------------------------------- Tuple *)

let emp name age dept salary job =
  Tuple.create
    [ Value.Str name; Value.Int age; Value.Str dept; Value.Int salary; Value.Str job ]

let test_tuple_basics () =
  let t = emp "Susan" 28 "Accounting" 30_000 "Programmer" in
  Alcotest.(check int) "arity" 5 (Tuple.arity t);
  Alcotest.(check bool) "get" true (Value.equal (Tuple.get t 1) (Value.Int 28));
  Alcotest.(check bool) "field" true
    (Value.equal (Tuple.field emp_schema "job" t) (Value.Str "Programmer"));
  Alcotest.(check bool) "matches schema" true (Tuple.matches_schema emp_schema t)

let test_tuple_schema_mismatch () =
  let bad = Tuple.create [ Value.Int 1 ] in
  Alcotest.(check bool) "wrong arity" false (Tuple.matches_schema emp_schema bad);
  let wrong_type =
    Tuple.create
      [ Value.Int 1; Value.Int 28; Value.Str "d"; Value.Int 3; Value.Str "j" ]
  in
  Alcotest.(check bool) "wrong type" false (Tuple.matches_schema emp_schema wrong_type)

let test_tuple_concat_compare () =
  let a = Tuple.create [ Value.Int 1 ] and b = Tuple.create [ Value.Int 2 ] in
  let ab = Tuple.concat a b in
  Alcotest.(check int) "concat arity" 2 (Tuple.arity ab);
  Alcotest.(check bool) "compare prefix" true (Tuple.compare a ab < 0);
  Alcotest.(check bool) "equal" true (Tuple.equal ab (Tuple.create [ Value.Int 1; Value.Int 2 ]))

(* ------------------------------------------------------------ Predicate *)

let test_predicate_ops () =
  let two = Value.Int 2 and three = Value.Int 3 in
  Alcotest.(check bool) "lt" true (Predicate.eval_op Predicate.Lt two three);
  Alcotest.(check bool) "le eq" true (Predicate.eval_op Predicate.Le two two);
  Alcotest.(check bool) "eq" false (Predicate.eval_op Predicate.Eq two three);
  Alcotest.(check bool) "ne" true (Predicate.eval_op Predicate.Ne two three);
  Alcotest.(check bool) "ge" false (Predicate.eval_op Predicate.Ge two three);
  Alcotest.(check bool) "gt" true (Predicate.eval_op Predicate.Gt three two)

let test_predicate_negate () =
  List.iter
    (fun op ->
      let a = Value.Int 1 and b = Value.Int 2 in
      Alcotest.(check bool) "negation flips" (not (Predicate.eval_op op a b))
        (Predicate.eval_op (Predicate.negate_op op) a b))
    [ Predicate.Lt; Le; Eq; Ne; Ge; Gt ]

let test_predicate_eval () =
  let t = emp "Susan" 28 "Accounting" 30_000 "Programmer" in
  let is_prog =
    [ Predicate.term ~attr:4 ~op:Predicate.Eq ~value:(Value.Str "Programmer") ]
  in
  Alcotest.(check bool) "matches" true (Predicate.eval is_prog t);
  let young_clerk =
    [
      Predicate.term ~attr:1 ~op:Predicate.Lt ~value:(Value.Int 30);
      Predicate.term ~attr:4 ~op:Predicate.Eq ~value:(Value.Str "Clerk");
    ]
  in
  Alcotest.(check bool) "conjunction fails" false (Predicate.eval young_clerk t);
  Alcotest.(check bool) "empty = true" true (Predicate.eval Predicate.always_true t)

let test_predicate_equal_modulo_order () =
  let p1 =
    [
      Predicate.term ~attr:0 ~op:Predicate.Ge ~value:(Value.Int 1);
      Predicate.term ~attr:1 ~op:Predicate.Lt ~value:(Value.Int 5);
    ]
  in
  let p2 = List.rev p1 in
  Alcotest.(check bool) "order irrelevant" true (Predicate.equal p1 p2);
  let p3 = [ Predicate.term ~attr:0 ~op:Predicate.Ge ~value:(Value.Int 2) ] in
  Alcotest.(check bool) "different" false (Predicate.equal p1 p3)

let test_predicate_join () =
  let jt = Predicate.join_term ~left_attr:1 ~op:Predicate.Eq ~right_attr:0 in
  let l = Tuple.create [ Value.Str "x"; Value.Int 7 ] in
  let r = Tuple.create [ Value.Int 7; Value.Str "y" ] in
  Alcotest.(check bool) "join match" true (Predicate.eval_join jt ~left:l ~right:r);
  let r' = Tuple.create [ Value.Int 8; Value.Str "y" ] in
  Alcotest.(check bool) "join mismatch" false (Predicate.eval_join jt ~left:l ~right:r')

(* ------------------------------------------------------------- Relation *)

let small_schema = Schema.create [ ("k", Value.TInt); ("v", Value.TInt) ]

let make_rel ?(name = "T") () =
  let cost = Cost.create () in
  let io = Io.direct cost ~page_bytes:400 in
  (cost, Relation.create ~io ~name ~schema:small_schema ~tuple_bytes:100)

let kv k v = Tuple.create [ Value.Int k; Value.Int v ]

let test_relation_insert_get () =
  let _, r = make_rel () in
  let rid = Relation.insert r (kv 1 10) in
  Alcotest.(check bool) "get" true (Tuple.equal (kv 1 10) (Relation.get r rid));
  Alcotest.(check int) "card" 1 (Relation.cardinality r)

let test_relation_schema_check () =
  let _, r = make_rel () in
  Alcotest.(check bool) "bad tuple rejected" true
    (try
       ignore (Relation.insert r (Tuple.create [ Value.Str "x" ]));
       false
     with Invalid_argument _ -> true)

let test_relation_btree_maintenance () =
  let _, r = make_rel () in
  Relation.add_btree_index r ~attr:"k" ~entry_bytes:20;
  let rid = Relation.insert r (kv 5 50) in
  ignore (Relation.insert r (kv 6 60));
  Alcotest.(check int) "fetch via index" 1 (List.length (Relation.fetch_by_key r ~attr:"k" (Value.Int 5)));
  (* update the key: index entry must move *)
  ignore (Relation.update r rid (kv 7 50));
  Alcotest.(check int) "old key gone" 0 (List.length (Relation.fetch_by_key r ~attr:"k" (Value.Int 5)));
  Alcotest.(check int) "new key found" 1 (List.length (Relation.fetch_by_key r ~attr:"k" (Value.Int 7)));
  (* delete: index entry removed *)
  ignore (Relation.delete r rid);
  Alcotest.(check int) "deleted" 0 (List.length (Relation.fetch_by_key r ~attr:"k" (Value.Int 7)))

let test_relation_hash_primary () =
  let cost, r = make_rel () in
  Cost.with_disabled cost (fun () ->
      for i = 1 to 50 do
        ignore (Relation.insert r (kv i (i * 10)))
      done);
  Relation.add_hash_index ~primary:true r ~attr:"k" ~entry_bytes:20 ~expected_entries:50;
  Cost.reset cost;
  let hits = Relation.fetch_by_key r ~attr:"k" (Value.Int 25) in
  Alcotest.(check int) "found" 1 (List.length hits);
  (* primary hash: only bucket-chain reads charged, no separate heap read *)
  Alcotest.(check int) "one page read" 1 (Cost.page_reads cost)

let test_relation_duplicate_index_rejected () =
  let _, r = make_rel () in
  Relation.add_btree_index r ~attr:"k" ~entry_bytes:20;
  Alcotest.(check bool) "second index on same attr rejected" true
    (try
       Relation.add_hash_index r ~attr:"k" ~entry_bytes:20 ~expected_entries:10;
       false
     with Invalid_argument _ -> true)

let test_relation_update_batch () =
  let cost, r = make_rel () in
  Cost.with_disabled cost (fun () ->
      for i = 0 to 3 do
        ignore (Relation.insert r (kv i i))
      done);
  let rids =
    let acc = ref [] in
    Cost.with_disabled cost (fun () -> Relation.scan r ~f:(fun rid _ -> acc := rid :: !acc));
    List.rev !acc
  in
  Cost.reset cost;
  let changes = List.map (fun rid -> (rid, kv 100 100)) rids in
  let old_new = Relation.update_batch r changes in
  Alcotest.(check int) "4 pairs" 4 (List.length old_new);
  (* All 4 tuples on one page (4 per page at 100B/400B): 1 read + 1 write *)
  Alcotest.(check int) "heap page read once" 1 (Cost.page_reads cost);
  Alcotest.(check int) "heap page written once" 1 (Cost.page_writes cost);
  List.iter
    (fun (old_t, new_t) ->
      Alcotest.(check bool) "new stored" true (Tuple.equal new_t (kv 100 100));
      Alcotest.(check bool) "old returned" true (not (Tuple.equal old_t new_t)))
    old_new

let test_relation_load_rebuilds_indexes () =
  let _, r = make_rel () in
  Relation.add_btree_index r ~attr:"k" ~entry_bytes:20;
  ignore (Relation.insert r (kv 1 1));
  Relation.load r [ kv 7 70; kv 8 80 ];
  Alcotest.(check int) "card" 2 (Relation.cardinality r);
  Alcotest.(check int) "old data gone from index" 0
    (List.length (Relation.fetch_by_key r ~attr:"k" (Value.Int 1)));
  Alcotest.(check int) "new data indexed" 1
    (List.length (Relation.fetch_by_key r ~attr:"k" (Value.Int 8)))

let test_relation_index_descriptions () =
  let _, r = make_rel () in
  Relation.add_btree_index r ~attr:"k" ~entry_bytes:20;
  Relation.add_hash_index ~primary:true r ~attr:"v" ~entry_bytes:20 ~expected_entries:10;
  let descs = List.sort compare (Relation.index_descriptions r) in
  Alcotest.(check bool) "btree listed" true (List.mem ("k", `Btree) descs);
  Alcotest.(check bool) "primary hash listed" true (List.mem ("v", `Hash true) descs)

let test_relation_read_all () =
  let _, r = make_rel () in
  ignore (Relation.insert r (kv 1 1));
  ignore (Relation.insert r (kv 2 2));
  Alcotest.(check int) "read_all" 2 (List.length (Relation.read_all r))

(* -------------------------------------------------------------- Catalog *)

let test_catalog () =
  let io = Io.direct (Cost.create ()) ~page_bytes:400 in
  let cat = Catalog.create ~io in
  let r = Catalog.create_relation cat ~name:"A" ~schema:small_schema ~tuple_bytes:100 in
  Alcotest.(check bool) "find" true (Relation.name (Catalog.find cat "A") = "A");
  Alcotest.(check bool) "find_opt none" true (Catalog.find_opt cat "B" = None);
  Alcotest.(check (list string)) "names" [ "A" ] (Catalog.names cat);
  Alcotest.(check bool) "duplicate rejected" true
    (try
       Catalog.add cat r;
       false
     with Invalid_argument _ -> true)

let () =
  Alcotest.run "relation"
    [
      ( "value",
        [
          Alcotest.test_case "compare" `Quick test_value_compare;
          Alcotest.test_case "type_of" `Quick test_value_type_of;
          Alcotest.test_case "to_string" `Quick test_value_to_string;
        ] );
      ( "schema",
        [
          Alcotest.test_case "basics" `Quick test_schema_basics;
          Alcotest.test_case "duplicate rejected" `Quick test_schema_duplicate_rejected;
          Alcotest.test_case "empty rejected" `Quick test_schema_empty_rejected;
          Alcotest.test_case "qualify/concat" `Quick test_schema_qualify_concat;
          Alcotest.test_case "concat clash" `Quick test_schema_concat_clash;
        ] );
      ( "tuple",
        [
          Alcotest.test_case "basics" `Quick test_tuple_basics;
          Alcotest.test_case "schema mismatch" `Quick test_tuple_schema_mismatch;
          Alcotest.test_case "concat/compare" `Quick test_tuple_concat_compare;
        ] );
      ( "predicate",
        [
          Alcotest.test_case "operators" `Quick test_predicate_ops;
          Alcotest.test_case "negation" `Quick test_predicate_negate;
          Alcotest.test_case "conjunction eval" `Quick test_predicate_eval;
          Alcotest.test_case "equality modulo order" `Quick test_predicate_equal_modulo_order;
          Alcotest.test_case "join terms" `Quick test_predicate_join;
        ] );
      ( "relation",
        [
          Alcotest.test_case "insert/get" `Quick test_relation_insert_get;
          Alcotest.test_case "schema check" `Quick test_relation_schema_check;
          Alcotest.test_case "btree maintenance" `Quick test_relation_btree_maintenance;
          Alcotest.test_case "hash primary charging" `Quick test_relation_hash_primary;
          Alcotest.test_case "duplicate index rejected" `Quick
            test_relation_duplicate_index_rejected;
          Alcotest.test_case "update_batch" `Quick test_relation_update_batch;
          Alcotest.test_case "load rebuilds indexes" `Quick test_relation_load_rebuilds_indexes;
          Alcotest.test_case "index descriptions" `Quick test_relation_index_descriptions;
          Alcotest.test_case "read_all" `Quick test_relation_read_all;
        ] );
      ("catalog", [ Alcotest.test_case "register/find" `Quick test_catalog ]);
    ]
