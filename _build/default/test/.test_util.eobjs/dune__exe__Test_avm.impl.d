test/test_avm.ml: Aggregate_view Alcotest Cost Dbproc Gen Io List Materialized_view Predicate QCheck QCheck_alcotest Relation Schema Tuple Value View_def
