test/test_workload.ml: Alcotest Database Dbproc Driver Float List Model Params Predicate Printf QCheck QCheck_alcotest Query Relation Storage Strategy Tuple Util Value Workload
