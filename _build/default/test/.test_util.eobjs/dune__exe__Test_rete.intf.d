test/test_rete.mli:
