test/test_query.ml: Alcotest Btree Cost Dbproc Executor Explain Format Io List Plan Planner Predicate QCheck QCheck_alcotest Relation Schema String Tuple Value View_def
