test/test_storage.ml: Alcotest Cost Dbproc Hashtbl Heap_file Io List Option QCheck QCheck_alcotest Wal
