test/test_lang.ml: Alcotest Ast Dbproc Filename Format In_channel Interp Lexer List Parser Printf QCheck QCheck_alcotest String Sys
