test/test_avm.mli:
