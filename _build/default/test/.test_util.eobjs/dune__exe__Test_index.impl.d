test/test_index.ml: Alcotest Btree Cost Dbproc Hash_index Hashtbl Int Io List QCheck QCheck_alcotest
