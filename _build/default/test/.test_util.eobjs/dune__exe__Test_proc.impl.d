test/test_proc.ml: Adaptive Alcotest Cost Dbproc Gen Ilock Inval_table Io List Lock_manager Manager Predicate Printf QCheck QCheck_alcotest Query Relation Result_cache Schema Tuple Value View_def
