test/test_util.ml: Alcotest Array Ascii_chart Ascii_table Dbproc Float Fun Int Interval_index List Locality Prng QCheck QCheck_alcotest Stats String Yao
