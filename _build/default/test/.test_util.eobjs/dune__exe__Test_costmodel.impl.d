test/test_costmodel.ml: Alcotest Dbproc Figures Float List Model Nway_model Params Printf QCheck QCheck_alcotest Regions Sensitivity Strategy String
