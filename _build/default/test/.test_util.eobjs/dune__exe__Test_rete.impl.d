test/test_rete.ml: Alcotest Builder Cost Dbproc Gen Io List Memory Network Optimizer Predicate QCheck QCheck_alcotest Relation Schema String Treat Tuple Value View_def
