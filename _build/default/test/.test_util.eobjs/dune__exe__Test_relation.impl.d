test/test_relation.ml: Alcotest Catalog Cost Dbproc Io List Predicate Relation Schema Tuple Value
