test/test_fuzz.ml: Adaptive Alcotest Array Cost Dbproc Executor Io List Manager Planner Predicate Printf QCheck QCheck_alcotest Relation Schema String Tuple Util Value View_def
