(* Tests for Dbproc.Query: view definitions, planner, executor correctness
   against naive evaluation, and cost charging. *)

open Dbproc
open Dbproc.Storage
open Dbproc.Query
open Dbproc.Index

(* Shared fixture: R(k, v) with a btree on k; S(b, w) hash-primary on b. *)
type fixture = { cost : Cost.t; r : Relation.t; s : Relation.t }

let r_schema = Schema.create [ ("k", Value.TInt); ("v", Value.TInt) ]
let s_schema = Schema.create [ ("b", Value.TInt); ("w", Value.TInt) ]

let make_fixture ?(r_rows = 40) ?(s_rows = 10) () =
  let cost = Cost.create () in
  let io = Io.direct cost ~page_bytes:400 in
  let r = Relation.create ~io ~name:"R" ~schema:r_schema ~tuple_bytes:100 in
  Relation.load r
    (List.init r_rows (fun i -> Tuple.create [ Value.Int i; Value.Int (i mod s_rows) ]));
  Relation.add_btree_index r ~attr:"k" ~entry_bytes:20;
  let s = Relation.create ~io ~name:"S" ~schema:s_schema ~tuple_bytes:100 in
  Relation.load s (List.init s_rows (fun b -> Tuple.create [ Value.Int b; Value.Int (b * 100) ]));
  Relation.add_hash_index ~primary:true s ~attr:"b" ~entry_bytes:100 ~expected_entries:s_rows;
  { cost; r; s }

let interval schema attr lo hi =
  let pos = Schema.index_of schema attr in
  [
    Predicate.term ~attr:pos ~op:Predicate.Ge ~value:(Value.Int lo);
    Predicate.term ~attr:pos ~op:Predicate.Lt ~value:(Value.Int hi);
  ]

let select_view fx lo hi =
  View_def.select ~name:"V" ~rel:fx.r ~restriction:(interval r_schema "k" lo hi)

let join_view fx lo hi =
  View_def.join (select_view fx lo hi) ~rel:fx.s ~restriction:Predicate.always_true
    ~left:"R.v" ~op:Predicate.Eq ~right:"b"

(* ------------------------------------------------------------- View_def *)

let test_view_def_schema () =
  let fx = make_fixture () in
  let def = join_view fx 0 5 in
  let schema = View_def.schema def in
  Alcotest.(check int) "arity" 4 (Schema.arity schema);
  Alcotest.(check int) "qualified R.k" 0 (Schema.index_of schema "R.k");
  Alcotest.(check int) "qualified S.w" 3 (Schema.index_of schema "S.w")

let test_view_def_self_join_schema () =
  let fx = make_fixture () in
  let def =
    View_def.join (select_view fx 0 5) ~rel:fx.r ~restriction:Predicate.always_true
      ~left:"R.v" ~op:Predicate.Eq ~right:"k"
  in
  let schema = View_def.schema def in
  Alcotest.(check int) "self-join disambiguated" 2 (Schema.index_of schema "R#1.k")

let test_view_def_sources_offsets () =
  let fx = make_fixture () in
  let def = join_view fx 0 5 in
  Alcotest.(check int) "two sources" 2 (List.length (View_def.sources def));
  Alcotest.(check (list int)) "offsets" [ 0; 2 ] (View_def.source_offsets def);
  Alcotest.(check bool) "depends on R" true (View_def.depends_on def fx.r);
  Alcotest.(check bool) "depends on S" true (View_def.depends_on def fx.s)

(* -------------------------------------------------------------- Planner *)

let test_planner_bounds () =
  let restriction = interval r_schema "k" 3 9 in
  let lo, hi = Planner.bounds_of_restriction restriction ~attr:0 in
  Alcotest.(check bool) "lo" true (lo = Btree.Inclusive (Value.Int 3));
  Alcotest.(check bool) "hi" true (hi = Btree.Exclusive (Value.Int 9))

let test_planner_bounds_eq () =
  let restriction = [ Predicate.term ~attr:0 ~op:Predicate.Eq ~value:(Value.Int 5) ] in
  let lo, hi = Planner.bounds_of_restriction restriction ~attr:0 in
  Alcotest.(check bool) "eq gives closed point" true
    (lo = Btree.Inclusive (Value.Int 5) && hi = Btree.Inclusive (Value.Int 5))

let test_planner_bounds_tightening () =
  let restriction =
    [
      Predicate.term ~attr:0 ~op:Predicate.Ge ~value:(Value.Int 2);
      Predicate.term ~attr:0 ~op:Predicate.Gt ~value:(Value.Int 4);
      Predicate.term ~attr:0 ~op:Predicate.Le ~value:(Value.Int 9);
      Predicate.term ~attr:0 ~op:Predicate.Lt ~value:(Value.Int 8);
    ]
  in
  let lo, hi = Planner.bounds_of_restriction restriction ~attr:0 in
  Alcotest.(check bool) "tightest lo" true (lo = Btree.Exclusive (Value.Int 4));
  Alcotest.(check bool) "tightest hi" true (hi = Btree.Exclusive (Value.Int 8))

let test_planner_interval_of_restriction () =
  Alcotest.(check bool) "empty" true (Planner.interval_of_restriction [] = None);
  let multi =
    [
      Predicate.term ~attr:0 ~op:Predicate.Ge ~value:(Value.Int 1);
      Predicate.term ~attr:1 ~op:Predicate.Lt ~value:(Value.Int 5);
    ]
  in
  Alcotest.(check bool) "multi-attr" true (Planner.interval_of_restriction multi = None);
  let single = interval r_schema "k" 1 5 in
  (match Planner.interval_of_restriction single with
  | Some (0, Btree.Inclusive (Value.Int 1), Btree.Exclusive (Value.Int 5)) -> ()
  | _ -> Alcotest.fail "expected interval on attr 0");
  let ne_only = [ Predicate.term ~attr:0 ~op:Predicate.Ne ~value:(Value.Int 3) ] in
  Alcotest.(check bool) "ne alone has no bounds" true
    (Planner.interval_of_restriction ne_only = None)

let test_planner_chooses_btree () =
  let fx = make_fixture () in
  let plan = Planner.compile (select_view fx 0 5) in
  match plan.Plan.access with
  | Plan.Btree_range { attr = "k"; _ } -> ()
  | _ -> Alcotest.fail "expected btree range scan"

let test_planner_full_scan_fallback () =
  let fx = make_fixture () in
  (* restriction on v, which has no index *)
  let pos = Schema.index_of r_schema "v" in
  let def =
    View_def.select ~name:"V" ~rel:fx.r
      ~restriction:[ Predicate.term ~attr:pos ~op:Predicate.Eq ~value:(Value.Int 1) ]
  in
  match (Planner.compile def).Plan.access with
  | Plan.Full_scan _ -> ()
  | _ -> Alcotest.fail "expected full scan"

let test_planner_hash_point () =
  let fx = make_fixture () in
  (* S has a primary hash on b and no btree: an equality restriction on b
     should produce a hash point lookup. *)
  let pos = Schema.index_of s_schema "b" in
  let def =
    View_def.select ~name:"V" ~rel:fx.s
      ~restriction:[ Predicate.term ~attr:pos ~op:Predicate.Eq ~value:(Value.Int 3) ]
  in
  (match (Planner.compile def).Plan.access with
  | Plan.Hash_point { attr = "b"; key = Value.Int 3; _ } -> ()
  | _ -> Alcotest.fail "expected hash point lookup");
  let got = Executor.run (Planner.compile def) in
  Alcotest.(check int) "one tuple" 1 (List.length got);
  (* a range restriction on b cannot use the hash index *)
  let range_def =
    View_def.select ~name:"V" ~rel:fx.s
      ~restriction:[ Predicate.term ~attr:pos ~op:Predicate.Lt ~value:(Value.Int 3) ]
  in
  match (Planner.compile range_def).Plan.access with
  | Plan.Full_scan _ -> ()
  | _ -> Alcotest.fail "range over hash must fall back to full scan"

let test_hash_point_charges () =
  let fx = make_fixture () in
  let pos = Schema.index_of s_schema "b" in
  let def =
    View_def.select ~name:"V" ~rel:fx.s
      ~restriction:[ Predicate.term ~attr:pos ~op:Predicate.Eq ~value:(Value.Int 3) ]
  in
  let plan = Planner.compile def in
  Cost.reset fx.cost;
  ignore (Executor.run plan);
  (* one bucket page + one screen *)
  Alcotest.(check int) "one page" 1 (Cost.page_reads fx.cost);
  Alcotest.(check int) "one screen" 1 (Cost.cpu_screens fx.cost)

let test_planner_join_probe () =
  let fx = make_fixture () in
  let plan = Planner.compile (join_view fx 0 5) in
  match plan.Plan.probes with
  | [ probe ] ->
    Alcotest.(check string) "probe attr" "b" probe.Plan.probe_attr;
    Alcotest.(check int) "outer attr is R.v" 1 probe.Plan.outer_attr
  | _ -> Alcotest.fail "expected one probe"

(* ------------------------------------------------------------- Executor *)

(* Naive reference evaluation, no indexes, no costs. *)
let naive_eval fx (def : View_def.t) =
  Cost.with_disabled fx.cost (fun () ->
      let base =
        List.filter
          (Predicate.eval def.View_def.base.restriction)
          (Relation.read_all def.View_def.base.rel)
      in
      List.fold_left
        (fun acc (step : View_def.join_step) ->
          let inner =
            List.filter
              (Predicate.eval step.source.restriction)
              (Relation.read_all step.source.rel)
          in
          List.concat_map
            (fun l ->
              List.filter_map
                (fun r ->
                  if
                    Predicate.eval_op step.op (Tuple.get l step.left_attr)
                      (Tuple.get r step.right_attr)
                  then Some (Tuple.concat l r)
                  else None)
                inner)
            acc)
        base def.View_def.steps)

let sorted = List.sort Tuple.compare

let test_planner_scan_join_fallback () =
  let fx = make_fixture () in
  (* a non-equality join cannot probe an index: scan-join fallback *)
  let lt_def =
    View_def.join (select_view fx 0 5) ~rel:fx.s ~restriction:Predicate.always_true
      ~left:"R.v" ~op:Predicate.Lt ~right:"b"
  in
  (match (Planner.compile lt_def).Plan.probes with
  | [ p ] -> Alcotest.(check bool) "lt join scans" false p.Plan.use_index
  | _ -> Alcotest.fail "expected one probe");
  Alcotest.(check bool) "scan-join matches naive" true
    (List.for_all2 Tuple.equal
       (sorted (Executor.run (Planner.compile lt_def)))
       (sorted (naive_eval fx lt_def)));
  (* an equality join on an unindexed attribute also scans *)
  let unindexed_def =
    View_def.join (select_view fx 0 5) ~rel:fx.s ~restriction:Predicate.always_true
      ~left:"R.v" ~op:Predicate.Eq ~right:"w"
  in
  (match (Planner.compile unindexed_def).Plan.probes with
  | [ p ] -> Alcotest.(check bool) "unindexed join scans" false p.Plan.use_index
  | _ -> Alcotest.fail "expected one probe");
  Alcotest.(check bool) "unindexed scan-join matches naive" true
    (List.for_all2 Tuple.equal
       (sorted (Executor.run (Planner.compile unindexed_def)))
       (sorted (naive_eval fx unindexed_def)))

let test_scan_join_charges_inner_once () =
  let fx = make_fixture () in
  let def =
    View_def.join (select_view fx 0 8) ~rel:fx.s ~restriction:Predicate.always_true
      ~left:"R.v" ~op:Predicate.Lt ~right:"b"
  in
  let plan = Planner.compile def in
  Cost.reset fx.cost;
  ignore (Executor.run plan);
  (* 8 outer tuples x 10 inner tuples = 80 join screens + 8 base screens;
     the inner relation's 3 pages charge once despite 8 scans *)
  Alcotest.(check int) "screens" 88 (Cost.cpu_screens fx.cost);
  Alcotest.(check bool) "inner pages deduped" true (Cost.page_reads fx.cost <= 8)


let test_executor_select () =
  let fx = make_fixture () in
  let def = select_view fx 10 15 in
  let got = Executor.run (Planner.compile def) in
  Alcotest.(check int) "5 tuples" 5 (List.length got);
  Alcotest.(check bool) "matches naive" true
    (List.for_all2 Tuple.equal (sorted got) (sorted (naive_eval fx def)))

let test_executor_join () =
  let fx = make_fixture () in
  let def = join_view fx 0 20 in
  let got = Executor.run (Planner.compile def) in
  Alcotest.(check int) "20 joined tuples" 20 (List.length got);
  Alcotest.(check bool) "matches naive" true
    (List.for_all2 Tuple.equal (sorted got) (sorted (naive_eval fx def)))

let test_executor_join_with_inner_restriction () =
  let fx = make_fixture () in
  let def =
    View_def.join (select_view fx 0 20) ~rel:fx.s
      ~restriction:(interval s_schema "b" 0 5)
      ~left:"R.v" ~op:Predicate.Eq ~right:"b"
  in
  let got = Executor.run (Planner.compile def) in
  Alcotest.(check int) "half survive" 10 (List.length got);
  Alcotest.(check bool) "matches naive" true
    (List.for_all2 Tuple.equal (sorted got) (sorted (naive_eval fx def)))

let test_executor_empty_result () =
  let fx = make_fixture () in
  let def = select_view fx 1000 1001 in
  Alcotest.(check int) "empty" 0 (List.length (Executor.run (Planner.compile def)))

let test_executor_charges_screens () =
  let fx = make_fixture () in
  let def = select_view fx 0 10 in
  let plan = Planner.compile def in
  Cost.reset fx.cost;
  ignore (Executor.run plan);
  (* 10 base tuples fetched -> 10 C1 screens *)
  Alcotest.(check int) "screens" 10 (Cost.cpu_screens fx.cost)

let test_executor_join_charges_probe_screens () =
  let fx = make_fixture () in
  let plan = Planner.compile (join_view fx 0 10) in
  Cost.reset fx.cost;
  ignore (Executor.run plan);
  (* 10 base screens + 10 probe screens *)
  Alcotest.(check int) "screens" 20 (Cost.cpu_screens fx.cost)

let test_executor_page_dedup () =
  let fx = make_fixture () in
  (* An interval of 8 rows spans 2 heap pages (4 rows/page, loaded in key
     order); repeated touches of one page charge once. *)
  let plan = Planner.compile (select_view fx 0 8) in
  Cost.reset fx.cost;
  ignore (Executor.run plan);
  let heap_reads = Cost.page_reads fx.cost in
  (* btree descent (small tree: ~1-2 nodes) + 2 heap pages *)
  Alcotest.(check bool) "reads bounded" true (heap_reads <= 6)

let test_executor_probe_chain () =
  let fx = make_fixture () in
  let plan = Planner.compile (join_view fx 0 4) in
  let outer = Cost.with_disabled fx.cost (fun () -> Executor.run_base plan) in
  let joined = Executor.probe_chain ~probes:plan.Plan.probes ~outer in
  Alcotest.(check int) "4 joined" 4 (List.length joined);
  List.iter (fun t -> Alcotest.(check int) "arity 4" 4 (Tuple.arity t)) joined

(* -------------------------------------------------------------- Explain *)

let test_explain_estimates_match_measured_select () =
  let fx = make_fixture () in
  let def = select_view fx 0 12 in
  let report = Explain.explain_run def in
  Alcotest.(check int) "rows" 12 report.Explain.rows;
  (* selection estimates should be near-exact: same Yao inputs *)
  let ratio = report.Explain.est_ms /. report.Explain.measured_ms in
  if ratio < 0.7 || ratio > 1.4 then
    Alcotest.failf "est %.1f vs measured %.1f" report.Explain.est_ms
      report.Explain.measured_ms

let test_explain_join_steps () =
  let fx = make_fixture () in
  let def = join_view fx 0 10 in
  let report = Explain.explain_run def in
  Alcotest.(check int) "two steps" 2 (List.length report.Explain.steps);
  Alcotest.(check int) "rows" 10 report.Explain.rows;
  let ratio = report.Explain.est_ms /. report.Explain.measured_ms in
  if ratio < 0.5 || ratio > 2.0 then
    Alcotest.failf "join est %.1f vs measured %.1f" report.Explain.est_ms
      report.Explain.measured_ms

let test_explain_renders () =
  let fx = make_fixture () in
  let report = Explain.explain_run (join_view fx 0 5) in
  let text = Format.asprintf "%a" Explain.pp_report report in
  Alcotest.(check bool) "mentions plan" true (String.length text > 40)

let executor_matches_naive_property =
  QCheck.Test.make ~name:"executor matches naive evaluation" ~count:60
    QCheck.(pair (int_bound 39) (int_bound 20))
    (fun (lo, width) ->
      let fx = make_fixture () in
      let def = join_view fx lo (lo + width) in
      let got = sorted (Executor.run (Planner.compile def)) in
      let expected = sorted (naive_eval fx def) in
      List.length got = List.length expected && List.for_all2 Tuple.equal got expected)

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "query"
    [
      ( "view_def",
        [
          Alcotest.test_case "schema qualification" `Quick test_view_def_schema;
          Alcotest.test_case "self-join schema" `Quick test_view_def_self_join_schema;
          Alcotest.test_case "sources/offsets" `Quick test_view_def_sources_offsets;
        ] );
      ( "planner",
        [
          Alcotest.test_case "bounds extraction" `Quick test_planner_bounds;
          Alcotest.test_case "bounds from eq" `Quick test_planner_bounds_eq;
          Alcotest.test_case "bounds tightening" `Quick test_planner_bounds_tightening;
          Alcotest.test_case "interval of restriction" `Quick test_planner_interval_of_restriction;
          Alcotest.test_case "chooses btree" `Quick test_planner_chooses_btree;
          Alcotest.test_case "full scan fallback" `Quick test_planner_full_scan_fallback;
          Alcotest.test_case "hash point lookup" `Quick test_planner_hash_point;
          Alcotest.test_case "hash point charges" `Quick test_hash_point_charges;
          Alcotest.test_case "join probe" `Quick test_planner_join_probe;
          Alcotest.test_case "scan-join fallback" `Quick test_planner_scan_join_fallback;
          Alcotest.test_case "scan-join dedups inner" `Quick test_scan_join_charges_inner_once;
        ] );
      ( "executor",
        [
          Alcotest.test_case "select" `Quick test_executor_select;
          Alcotest.test_case "join" `Quick test_executor_join;
          Alcotest.test_case "join with inner restriction" `Quick
            test_executor_join_with_inner_restriction;
          Alcotest.test_case "empty result" `Quick test_executor_empty_result;
          Alcotest.test_case "charges screens" `Quick test_executor_charges_screens;
          Alcotest.test_case "join charges probe screens" `Quick
            test_executor_join_charges_probe_screens;
          Alcotest.test_case "page dedup" `Quick test_executor_page_dedup;
          Alcotest.test_case "probe chain" `Quick test_executor_probe_chain;
          qc executor_matches_naive_property;
        ] );
      ( "explain",
        [
          Alcotest.test_case "select est ~ measured" `Quick
            test_explain_estimates_match_measured_select;
          Alcotest.test_case "join steps" `Quick test_explain_join_steps;
          Alcotest.test_case "renders" `Quick test_explain_renders;
        ] );
    ]
