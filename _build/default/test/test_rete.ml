(* Tests for Dbproc.Rete: memory nodes, token propagation through t-const /
   and / memory nodes, shared subexpressions, and the paper's Section 2
   EMP/DEPT worked example. *)

open Dbproc
open Dbproc.Storage
open Dbproc.Query
open Dbproc.Rete

let sorted = List.sort Tuple.compare

let multiset_equal a b =
  let a = sorted a and b = sorted b in
  List.length a = List.length b && List.for_all2 Tuple.equal a b

(* ---------------------------------------------------------------- Memory *)

let make_memory () =
  let cost = Cost.create () in
  let io = Io.direct cost ~page_bytes:400 in
  (cost, Memory.create ~io ~record_bytes:100 ~name:"m" ())

let t1 k v = Tuple.create [ Value.Int k; Value.Int v ]

let test_memory_insert_flush () =
  let cost, m = make_memory () in
  Memory.insert_logical m (t1 1 10);
  Memory.insert_logical m (t1 2 20);
  Alcotest.(check int) "logical card" 2 (Memory.cardinality m);
  Alcotest.(check int) "pending" 2 (Memory.pending_count m);
  Cost.reset cost;
  Memory.flush m;
  Alcotest.(check int) "one page touched" 1 (Cost.page_reads cost);
  Alcotest.(check int) "one page written" 1 (Cost.page_writes cost);
  Alcotest.(check int) "no pending" 0 (Memory.pending_count m);
  Alcotest.(check bool) "stored contents" true (multiset_equal [ t1 1 10; t1 2 20 ] (Memory.read m))

let test_memory_delete () =
  let _, m = make_memory () in
  Memory.insert_logical m (t1 1 10);
  Memory.flush m;
  Alcotest.(check bool) "delete present" true (Memory.delete_logical m (t1 1 10));
  Alcotest.(check bool) "delete absent" false (Memory.delete_logical m (t1 9 9));
  Memory.flush m;
  Alcotest.(check int) "empty" 0 (Memory.cardinality m);
  Alcotest.(check int) "stored empty" 0 (List.length (Memory.read m))

let test_memory_multiset () =
  let _, m = make_memory () in
  Memory.insert_logical m (t1 1 1);
  Memory.insert_logical m (t1 1 1);
  Memory.flush m;
  Alcotest.(check int) "two copies" 2 (Memory.cardinality m);
  ignore (Memory.delete_logical m (t1 1 1));
  Memory.flush m;
  Alcotest.(check int) "one copy left" 1 (Memory.cardinality m)

let test_memory_probe () =
  let cost, m = make_memory () in
  Memory.ensure_probe_index m ~attr:0;
  List.iter (fun i -> Memory.insert_logical m (t1 (i mod 3) i)) [ 0; 1; 2; 3; 4; 5 ];
  Memory.flush m;
  Cost.reset cost;
  let hits = Memory.probe m ~attr:0 (Value.Int 1) in
  Alcotest.(check int) "two matches" 2 (List.length hits);
  Alcotest.(check bool) "charged reads for stored pages" true (Cost.page_reads cost >= 1)

let test_memory_probe_pending_free () =
  let cost, m = make_memory () in
  Memory.ensure_probe_index m ~attr:0;
  Memory.insert_logical m (t1 1 10);
  (* not flushed: tuple only in memory *)
  Cost.reset cost;
  let hits = Memory.probe m ~attr:0 (Value.Int 1) in
  Alcotest.(check int) "found" 1 (List.length hits);
  Alcotest.(check int) "no page reads" 0 (Cost.page_reads cost)

let test_memory_load () =
  let _, m = make_memory () in
  Memory.load m [ t1 1 1; t1 2 2 ];
  Alcotest.(check int) "loaded" 2 (Memory.cardinality m);
  Memory.load m [ t1 3 3 ];
  Alcotest.(check int) "reload replaces" 1 (Memory.cardinality m)

(* ----------------------------------------- Paper example (EMP / DEPT) *)

(* Section 2 of the paper: views PROGS1 and CLERKS1 over EMP and DEPT,
   sharing the "DEPT.floor = 1" subexpression. *)

let emp_schema =
  Schema.create
    [
      ("name", Value.TStr);
      ("age", Value.TInt);
      ("dept", Value.TStr);
      ("salary", Value.TInt);
      ("job", Value.TStr);
    ]

let dept_schema = Schema.create [ ("dname", Value.TStr); ("floor", Value.TInt) ]

let emp name age dept salary job =
  Tuple.create
    [ Value.Str name; Value.Int age; Value.Str dept; Value.Int salary; Value.Str job ]

let dept dname floor = Tuple.create [ Value.Str dname; Value.Int floor ]

type paper_fixture = {
  cost : Cost.t;
  emp_rel : Relation.t;
  dept_rel : Relation.t;
  builder : Builder.t;
  progs1 : Network.mem_node;
  clerks1 : Network.mem_node;
}

let job_is job = [ Predicate.term ~attr:4 ~op:Predicate.Eq ~value:(Value.Str job) ]
let floor_is n = [ Predicate.term ~attr:1 ~op:Predicate.Eq ~value:(Value.Int n) ]

let make_paper_fixture () =
  let cost = Cost.create () in
  let io = Io.direct cost ~page_bytes:400 in
  let emp_rel = Relation.create ~io ~name:"EMP" ~schema:emp_schema ~tuple_bytes:100 in
  Relation.load emp_rel
    [
      emp "Alice" 30 "Shipping" 40_000 "Clerk";
      emp "Bob" 40 "Accounting" 50_000 "Programmer";
      emp "Carol" 35 "Shipping" 45_000 "Programmer";
    ];
  let dept_rel = Relation.create ~io ~name:"DEPT" ~schema:dept_schema ~tuple_bytes:100 in
  Relation.load dept_rel [ dept "Shipping" 1; dept "Accounting" 2 ];
  let builder = Builder.create ~io ~record_bytes:100 () in
  let view job_name view_name =
    let def =
      View_def.join
        (View_def.select ~name:view_name ~rel:emp_rel ~restriction:(job_is job_name))
        ~rel:dept_rel ~restriction:(floor_is 1) ~left:"EMP.dept" ~op:Predicate.Eq
        ~right:"dname"
    in
    Builder.add_view builder def
  in
  let progs1 = (view "Programmer" "PROGS1").Builder.result in
  let clerks1 = (view "Clerk" "CLERKS1").Builder.result in
  { cost; emp_rel; dept_rel; builder; progs1; clerks1 }

let test_paper_example_initial () =
  let fx = make_paper_fixture () in
  (* Carol is a first-floor programmer; Alice a first-floor clerk. *)
  Alcotest.(check int) "PROGS1" 1 (Memory.cardinality (Network.memory fx.progs1));
  Alcotest.(check int) "CLERKS1" 1 (Memory.cardinality (Network.memory fx.clerks1))

let test_paper_example_shared_floor_subexpression () =
  let fx = make_paper_fixture () in
  (* The DEPT.floor = 1 selection is shared between the two views. *)
  Alcotest.(check int) "one alpha reused" 1 (Builder.shared_alpha_count fx.builder)

let test_paper_example_susan_insertion () =
  let fx = make_paper_fixture () in
  (* The paper's worked example: inserting Susan (a programmer in
     Accounting, floor 2) must NOT reach PROGS1; moving Accounting to
     floor 1 first, it must. *)
  let net = Builder.network fx.builder in
  let susan = emp "Susan" 28 "Accounting" 30_000 "Programmer" in
  Network.apply_delta net ~rel:"EMP" ~inserted:[ susan ] ~deleted:[];
  Alcotest.(check int) "Susan filtered by floor" 1
    (Memory.cardinality (Network.memory fx.progs1));
  (* Now move Accounting to floor 1 (update = delete + insert). *)
  Network.apply_delta net ~rel:"DEPT"
    ~inserted:[ dept "Accounting" 1 ]
    ~deleted:[ dept "Accounting" 2 ];
  (* Susan and Bob both join now. *)
  Alcotest.(check int) "PROGS1 grows to 3" 3
    (Memory.cardinality (Network.memory fx.progs1));
  Alcotest.(check int) "CLERKS1 unchanged" 1
    (Memory.cardinality (Network.memory fx.clerks1))

let test_paper_example_deletion () =
  let fx = make_paper_fixture () in
  let net = Builder.network fx.builder in
  Network.apply_delta net ~rel:"EMP" ~inserted:[]
    ~deleted:[ emp "Carol" 35 "Shipping" 45_000 "Programmer" ];
  Alcotest.(check int) "PROGS1 empty" 0 (Memory.cardinality (Network.memory fx.progs1));
  Alcotest.(check int) "CLERKS1 unaffected" 1
    (Memory.cardinality (Network.memory fx.clerks1))

let test_paper_example_dot_rendering () =
  let fx = make_paper_fixture () in
  let dot = Network.to_dot (Builder.network fx.builder) in
  Alcotest.(check bool) "digraph" true (String.length dot > 100);
  let count_substring needle =
    let nl = String.length needle in
    let rec go i acc =
      if i + nl > String.length dot then acc
      else go (i + 1) (if String.sub dot i nl = needle then acc + 1 else acc)
    in
    go 0 0
  in
  (* both views' result beta memories and the EMP/DEPT t-consts appear *)
  Alcotest.(check bool) "EMP tconsts" true (count_substring "relation = EMP" >= 2);
  Alcotest.(check bool) "DEPT tconst" true (count_substring "relation = DEPT" >= 1);
  Alcotest.(check bool) "beta memories" true (count_substring "b-memory" >= 2);
  (* the shared floor=1 alpha feeds two joins: two outgoing edges *)
  Alcotest.(check bool) "escaped quotes" true (not (count_substring "\"Clerk\"" > 0))

let test_paper_example_composite_contents () =
  let fx = make_paper_fixture () in
  let contents = Memory.contents (Network.memory fx.progs1) in
  match contents with
  | [ t ] ->
    Alcotest.(check int) "EMP.all ++ DEPT.all" 7 (Tuple.arity t);
    Alcotest.(check bool) "name is Carol" true (Value.equal (Tuple.get t 0) (Value.Str "Carol"));
    Alcotest.(check bool) "dname is Shipping" true
      (Value.equal (Tuple.get t 5) (Value.Str "Shipping"))
  | _ -> Alcotest.fail "expected exactly one tuple"

(* -------------------------------------------- Network cost behaviour *)

let r_schema = Schema.create [ ("k", Value.TInt); ("v", Value.TInt) ]

let test_indexed_tconst_screens_only_covered () =
  let cost = Cost.create () in
  let io = Io.direct cost ~page_bytes:400 in
  let net = Network.create ~io ~record_bytes:100 () in
  let interval = Some (0, Dbproc.Index.Btree.Inclusive (Value.Int 10), Dbproc.Index.Btree.Exclusive (Value.Int 20)) in
  let pred =
    [
      Predicate.term ~attr:0 ~op:Predicate.Ge ~value:(Value.Int 10);
      Predicate.term ~attr:0 ~op:Predicate.Lt ~value:(Value.Int 20);
    ]
  in
  ignore (Network.add_tconst net ~rel:"R" ~pred ~interval ~name:"a");
  Cost.reset cost;
  let tuples = List.init 100 (fun i -> Tuple.create [ Value.Int i; Value.Int 0 ]) in
  Network.apply_delta net ~rel:"R" ~inserted:tuples ~deleted:[];
  (* only the 10 covered tuples charge C1 *)
  Alcotest.(check int) "screens = covered" 10 (Cost.cpu_screens cost)

let test_unindexed_tconst_screens_everything () =
  let cost = Cost.create () in
  let io = Io.direct cost ~page_bytes:400 in
  let net = Network.create ~io ~record_bytes:100 () in
  let pred = [ Predicate.term ~attr:1 ~op:Predicate.Eq ~value:(Value.Int 0) ] in
  ignore (Network.add_tconst net ~rel:"R" ~pred ~interval:None ~name:"a");
  Cost.reset cost;
  let tuples = List.init 50 (fun i -> Tuple.create [ Value.Int i; Value.Int (i mod 2) ]) in
  Network.apply_delta net ~rel:"R" ~inserted:tuples ~deleted:[];
  Alcotest.(check int) "screens all" 50 (Cost.cpu_screens cost)

let test_network_flush_batches_per_transaction () =
  let cost = Cost.create () in
  let io = Io.direct cost ~page_bytes:400 in
  let net = Network.create ~io ~record_bytes:100 () in
  let alpha = Network.add_tconst net ~rel:"R" ~pred:[] ~interval:None ~name:"a" in
  Cost.reset cost;
  (* 4 inserts fit one page: flushed once per transaction -> 1 read 1 write *)
  Network.apply_delta net ~rel:"R"
    ~inserted:(List.init 4 (fun i -> Tuple.create [ Value.Int i; Value.Int 0 ]))
    ~deleted:[];
  Alcotest.(check int) "memory page written once" 1 (Cost.page_writes cost);
  Alcotest.(check int) "alpha holds all" 4 (Memory.cardinality (Network.memory alpha))

let test_tokens_for_other_relations_ignored () =
  let cost = Cost.create () in
  let io = Io.direct cost ~page_bytes:400 in
  let net = Network.create ~io ~record_bytes:100 () in
  let alpha = Network.add_tconst net ~rel:"R" ~pred:[] ~interval:None ~name:"a" in
  Network.apply_delta net ~rel:"OTHER"
    ~inserted:[ Tuple.create [ Value.Int 1; Value.Int 1 ] ]
    ~deleted:[];
  Alcotest.(check int) "no effect" 0 (Memory.cardinality (Network.memory alpha))

(* -------------------------------------- Builder: model-2 right-deep *)

let s_schema = Schema.create [ ("b", Value.TInt); ("c", Value.TInt) ]
let u_schema = Schema.create [ ("dkey", Value.TInt); ("e", Value.TInt) ]

type chain_fixture = {
  cost : Cost.t;
  r : Relation.t;
  s : Relation.t;
  u : Relation.t;
  builder : Builder.t;
}

let make_chain_fixture () =
  let cost = Cost.create () in
  let io = Io.direct cost ~page_bytes:400 in
  let r = Relation.create ~io ~name:"R" ~schema:r_schema ~tuple_bytes:100 in
  Relation.load r (List.init 20 (fun i -> Tuple.create [ Value.Int i; Value.Int (i mod 5) ]));
  let s = Relation.create ~io ~name:"S" ~schema:s_schema ~tuple_bytes:100 in
  Relation.load s (List.init 5 (fun b -> Tuple.create [ Value.Int b; Value.Int (b mod 2) ]));
  let u = Relation.create ~io ~name:"U" ~schema:u_schema ~tuple_bytes:100 in
  Relation.load u (List.init 2 (fun d -> Tuple.create [ Value.Int d; Value.Int (d * 7) ]));
  let builder = Builder.create ~io ~record_bytes:100 () in
  { cost; r; s; u; builder }

let chain_def fx name lo hi =
  let restriction =
    [
      Predicate.term ~attr:0 ~op:Predicate.Ge ~value:(Value.Int lo);
      Predicate.term ~attr:0 ~op:Predicate.Lt ~value:(Value.Int hi);
    ]
  in
  let def = View_def.select ~name ~rel:fx.r ~restriction in
  let def =
    View_def.join def ~rel:fx.s ~restriction:Predicate.always_true ~left:"R.v"
      ~op:Predicate.Eq ~right:"b"
  in
  View_def.join def ~rel:fx.u ~restriction:Predicate.always_true ~left:"S.c" ~op:Predicate.Eq
    ~right:"dkey"

let naive_chain fx lo hi =
  let rs = Cost.with_disabled fx.cost (fun () -> Relation.read_all fx.r) in
  let ss = Cost.with_disabled fx.cost (fun () -> Relation.read_all fx.s) in
  let us = Cost.with_disabled fx.cost (fun () -> Relation.read_all fx.u) in
  List.concat_map
    (fun r ->
      match Tuple.get r 0 with
      | Value.Int k when k >= lo && k < hi ->
        List.concat_map
          (fun s ->
            if Value.equal (Tuple.get r 1) (Tuple.get s 0) then
              List.filter_map
                (fun u ->
                  if Value.equal (Tuple.get s 1) (Tuple.get u 0) then
                    Some (Tuple.concat (Tuple.concat r s) u)
                  else None)
                us
            else [])
          ss
      | _ -> [])
    rs

let test_right_deep_initial_contents () =
  let fx = make_chain_fixture () in
  let built = Builder.add_view fx.builder ~shape:`Right_deep (chain_def fx "V" 0 10) in
  Alcotest.(check bool) "matches naive 3-way join" true
    (multiset_equal
       (Memory.contents (Network.memory built.Builder.result))
       (naive_chain fx 0 10))

let test_right_deep_maintenance () =
  let fx = make_chain_fixture () in
  let built = Builder.add_view fx.builder ~shape:`Right_deep (chain_def fx "V" 0 10) in
  let net = Builder.network fx.builder in
  (* Move R tuple k=15 (outside) to k=3 (inside), in place. *)
  let old_t = Tuple.create [ Value.Int 15; Value.Int 0 ] in
  let new_t = Tuple.create [ Value.Int 3; Value.Int 0 ] in
  Cost.with_disabled fx.cost (fun () ->
      let rid, _ =
        List.find
          (fun (_, t) -> Tuple.equal t old_t)
          (let acc = ref [] in
           Relation.scan fx.r ~f:(fun rid t -> acc := (rid, t) :: !acc);
           !acc)
      in
      ignore (Relation.update fx.r rid new_t));
  Network.apply_delta net ~rel:"R" ~inserted:[ new_t ] ~deleted:[ old_t ];
  Alcotest.(check bool) "matches naive after update" true
    (multiset_equal
       (Memory.contents (Network.memory built.Builder.result))
       (naive_chain fx 0 10))

let test_left_deep_equivalent () =
  let fx = make_chain_fixture () in
  let built = Builder.add_view fx.builder ~shape:`Left_deep (chain_def fx "V" 0 10) in
  Alcotest.(check bool) "left-deep same contents" true
    (multiset_equal
       (Memory.contents (Network.memory built.Builder.result))
       (naive_chain fx 0 10))

let test_shared_beta_across_views () =
  let fx = make_chain_fixture () in
  let b1 = Builder.add_view fx.builder ~shape:`Right_deep (chain_def fx "V1" 0 5) in
  let b2 = Builder.add_view fx.builder ~shape:`Right_deep (chain_def fx "V2" 10 15) in
  (* Same S source, same U source, same join: the inner beta is shared. *)
  Alcotest.(check bool) "first not shared" false b1.Builder.shared_beta;
  Alcotest.(check bool) "second shared" true b2.Builder.shared_beta;
  Alcotest.(check int) "one beta reuse" 1 (Builder.shared_beta_count fx.builder)

let test_shared_alpha_p1_p2 () =
  (* A P1 selection and a P2 join with the same base restriction share the
     alpha memory (the paper's SF sharing). *)
  let fx = make_chain_fixture () in
  let restriction =
    [
      Predicate.term ~attr:0 ~op:Predicate.Ge ~value:(Value.Int 0);
      Predicate.term ~attr:0 ~op:Predicate.Lt ~value:(Value.Int 10);
    ]
  in
  let p1 = View_def.select ~name:"P1" ~rel:fx.r ~restriction in
  let b1 = Builder.add_view fx.builder p1 in
  let p2 =
    View_def.join p1 ~rel:fx.s ~restriction:Predicate.always_true ~left:"R.v"
      ~op:Predicate.Eq ~right:"b"
  in
  let b2 = Builder.add_view fx.builder p2 in
  Alcotest.(check bool) "P1 fresh" false b1.Builder.shared_alpha;
  Alcotest.(check bool) "P2 reuses P1's alpha" true b2.Builder.shared_alpha

(* ------------------------------------------------------- Optimizer *)

(* The shape decision needs memories that span several pages, so this
   fixture mirrors the workload generator's geometry: a selective R chain
   source, a sizable S, and U joining S one-to-one. *)
let make_optimizer_fixture () =
  let cost = Cost.create () in
  let io = Io.direct cost ~page_bytes:400 in
  let r = Relation.create ~io ~name:"R" ~schema:r_schema ~tuple_bytes:100 in
  Relation.load r
    (List.init 2000 (fun i -> Tuple.create [ Value.Int i; Value.Int (i mod 200) ]));
  let s = Relation.create ~io ~name:"S" ~schema:s_schema ~tuple_bytes:100 in
  Relation.load s
    (List.init 200 (fun b -> Tuple.create [ Value.Int b; Value.Int (b mod 100) ]));
  let u = Relation.create ~io ~name:"U" ~schema:u_schema ~tuple_bytes:100 in
  Relation.load u (List.init 100 (fun d -> Tuple.create [ Value.Int d; Value.Int (d * 7) ]));
  let builder = Builder.create ~io ~record_bytes:100 () in
  { cost; r; s; u; builder }

let test_optimizer_prefers_right_deep_for_base_updates () =
  let fx = make_optimizer_fixture () in
  let def = chain_def fx "V" 0 20 in
  Alcotest.(check bool) "R-only profile -> right-deep" true
    (Optimizer.choose_shape def ~profile:[ ("R", 1.0) ] = `Right_deep)

let test_optimizer_prefers_left_deep_for_inner_updates () =
  let fx = make_optimizer_fixture () in
  let def = chain_def fx "V" 0 20 in
  Alcotest.(check bool) "S-heavy profile -> left-deep" true
    (Optimizer.choose_shape def ~profile:[ ("S", 1.0) ] = `Left_deep)

let test_optimizer_single_join_is_left_deep () =
  let fx = make_optimizer_fixture () in
  let def =
    View_def.join
      (View_def.select ~name:"V" ~rel:fx.r ~restriction:Predicate.always_true)
      ~rel:fx.s ~restriction:Predicate.always_true ~left:"R.v" ~op:Predicate.Eq ~right:"b"
  in
  Alcotest.(check bool) "no right-deep form" true
    (Optimizer.choose_shape def ~profile:[ ("R", 1.0) ] = `Left_deep)

let test_optimizer_estimates_positive_and_ranked () =
  let fx = make_optimizer_fixture () in
  let def = chain_def fx "V" 0 20 in
  let est shape profile = (Optimizer.estimate def ~profile ~shape).Optimizer.cost_per_update_ms in
  let r_profile = [ ("R", 1.0) ] and s_profile = [ ("S", 1.0) ] in
  Alcotest.(check bool) "right cheaper for R updates" true
    (est `Right_deep r_profile < est `Left_deep r_profile);
  Alcotest.(check bool) "left cheaper for S updates" true
    (est `Left_deep s_profile < est `Right_deep s_profile);
  List.iter
    (fun shape ->
      let e = Optimizer.estimate def ~profile:[ ("R", 0.5); ("S", 0.5) ] ~shape in
      Alcotest.(check bool) "positive" true (e.Optimizer.cost_per_update_ms > 0.0);
      Alcotest.(check int) "per-relation entries" 3 (List.length e.Optimizer.per_relation))
    [ `Left_deep; `Right_deep ]

let test_optimizer_untouched_relation_is_free () =
  let fx = make_optimizer_fixture () in
  let def = chain_def fx "V" 0 20 in
  let e = Optimizer.estimate def ~profile:[ ("U", 1.0) ] ~shape:`Right_deep in
  (* U never gets tokens in this workload profile weighting; but a U
     update does cost something — check the per-relation entry exists and
     the weighted cost equals it. *)
  let u_cost = List.assoc "U" e.Optimizer.per_relation in
  Alcotest.(check (float 1e-9)) "weighted = U cost" u_cost e.Optimizer.cost_per_update_ms

(* ----------------------------------------------------------- TREAT *)

let test_treat_initial_and_read () =
  let fx = make_chain_fixture () in
  let io = Relation.io fx.r in
  let treat = Treat.create ~io ~record_bytes:100 () in
  let id = Treat.add_view treat (chain_def fx "V" 0 10) in
  Alcotest.(check bool) "initial contents match naive" true
    (multiset_equal (Treat.read treat id) (naive_chain fx 0 10))

let treat_update fx treat k new_v =
  let old_t = Tuple.create [ Value.Int k; Value.Int (k mod 5) ] in
  let new_t = Tuple.create [ Value.Int new_v; Value.Int (k mod 5) ] in
  let found =
    Cost.with_disabled fx.cost (fun () ->
        let acc = ref None in
        Relation.scan fx.r ~f:(fun rid t -> if Tuple.equal t old_t && !acc = None then acc := Some rid);
        !acc)
  in
  match found with
  | None -> ()
  | Some rid ->
    Cost.with_disabled fx.cost (fun () -> ignore (Relation.update fx.r rid new_t));
    Treat.apply_delta treat ~rel:"R" ~inserted:[ new_t ] ~deleted:[ old_t ]

let test_treat_maintenance () =
  let fx = make_chain_fixture () in
  let treat = Treat.create ~io:(Relation.io fx.r) ~record_bytes:100 () in
  let id = Treat.add_view treat (chain_def fx "V" 0 10) in
  treat_update fx treat 15 3;
  (* moves k=15 into the interval *)
  Alcotest.(check bool) "maintained" true (Treat.matches_recompute treat id);
  treat_update fx treat 3 99;
  (* moves k=3 out *)
  Alcotest.(check bool) "maintained after delete" true (Treat.matches_recompute treat id)

let test_treat_inner_relation_update () =
  let fx = make_chain_fixture () in
  let treat = Treat.create ~io:(Relation.io fx.r) ~record_bytes:100 () in
  let id = Treat.add_view treat (chain_def fx "V" 0 10) in
  (* modify S in place: b=2's payload c flips parity *)
  let old_t = Tuple.create [ Value.Int 2; Value.Int 0 ] in
  let new_t = Tuple.create [ Value.Int 2; Value.Int 1 ] in
  Cost.with_disabled fx.cost (fun () ->
      let rid = ref None in
      Relation.scan fx.s ~f:(fun r t -> if Tuple.equal t old_t && !rid = None then rid := Some r);
      match !rid with Some r -> ignore (Relation.update fx.s r new_t) | None -> ());
  Treat.apply_delta treat ~rel:"S" ~inserted:[ new_t ] ~deleted:[ old_t ];
  Alcotest.(check bool) "inner delta maintained" true (Treat.matches_recompute treat id);
  Alcotest.(check bool) "contents equal naive" true
    (multiset_equal (Treat.read treat id) (naive_chain fx 0 10))

let test_treat_shares_alphas () =
  let fx = make_chain_fixture () in
  let treat = Treat.create ~io:(Relation.io fx.r) ~record_bytes:100 () in
  ignore (Treat.add_view treat (chain_def fx "V1" 0 10));
  ignore (Treat.add_view treat (chain_def fx "V2" 0 10));
  (* identical chains share all three alphas *)
  Alcotest.(check int) "3 shared" 3 (Treat.shared_alpha_count treat)

let test_treat_shared_alpha_maintenance () =
  (* Regression: a token must be applied once per shared alpha node, not
     once per view using it. *)
  let fx = make_chain_fixture () in
  let treat = Treat.create ~io:(Relation.io fx.r) ~record_bytes:100 () in
  let id1 = Treat.add_view treat (chain_def fx "V1" 0 10) in
  let id2 = Treat.add_view treat (chain_def fx "V2" 0 10) in
  treat_update fx treat 15 3;
  Alcotest.(check bool) "view 1 consistent" true (Treat.matches_recompute treat id1);
  Alcotest.(check bool) "view 2 consistent" true (Treat.matches_recompute treat id2)

let test_treat_rejects_non_eq () =
  let fx = make_chain_fixture () in
  let treat = Treat.create ~io:(Relation.io fx.r) ~record_bytes:100 () in
  let def =
    View_def.join
      (View_def.select ~name:"V" ~rel:fx.r ~restriction:Predicate.always_true)
      ~rel:fx.s ~restriction:Predicate.always_true ~left:"R.v" ~op:Predicate.Lt ~right:"b"
  in
  Alcotest.(check bool) "non-eq rejected" true
    (try
       ignore (Treat.add_view treat def);
       false
     with Treat.Unsupported _ -> true)

let treat_random_property =
  QCheck.Test.make ~name:"TREAT equals recompute under random updates" ~count:40
    QCheck.(list_of_size (Gen.int_range 1 10) (pair (int_bound 19) (int_bound 30)))
    (fun updates ->
      let fx = make_chain_fixture () in
      let treat = Treat.create ~io:(Relation.io fx.r) ~record_bytes:100 () in
      let id = Treat.add_view treat (chain_def fx "V" 3 12) in
      List.iter
        (fun (victim, new_k) ->
          let found =
            Cost.with_disabled fx.cost (fun () ->
                let acc = ref [] in
                Relation.scan fx.r ~f:(fun rid t -> acc := (rid, t) :: !acc);
                List.find_opt
                  (fun (_, t) -> Value.equal (Tuple.get t 0) (Value.Int victim))
                  !acc)
          in
          match found with
          | None -> ()
          | Some (rid, old_t) ->
            let new_t = Tuple.create [ Value.Int new_k; Tuple.get old_t 1 ] in
            Cost.with_disabled fx.cost (fun () -> ignore (Relation.update fx.r rid new_t));
            Treat.apply_delta treat ~rel:"R" ~inserted:[ new_t ] ~deleted:[ old_t ])
        updates;
      Treat.matches_recompute treat id)

let rvm_equals_recompute_property =
  QCheck.Test.make ~name:"RVM equals naive recompute under random updates" ~count:40
    QCheck.(list_of_size (Gen.int_range 1 10) (pair (int_bound 19) (int_bound 30)))
    (fun updates ->
      let fx = make_chain_fixture () in
      let built = Builder.add_view fx.builder ~shape:`Right_deep (chain_def fx "V" 3 12) in
      let net = Builder.network fx.builder in
      List.iter
        (fun (victim, new_k) ->
          let found =
            Cost.with_disabled fx.cost (fun () ->
                let acc = ref [] in
                Relation.scan fx.r ~f:(fun rid t -> acc := (rid, t) :: !acc);
                List.find_opt
                  (fun (_, t) -> Value.equal (Tuple.get t 0) (Value.Int victim))
                  !acc)
          in
          match found with
          | None -> ()
          | Some (rid, old_t) ->
            let new_t = Tuple.create [ Value.Int new_k; Tuple.get old_t 1 ] in
            Cost.with_disabled fx.cost (fun () -> ignore (Relation.update fx.r rid new_t));
            Network.apply_delta net ~rel:"R" ~inserted:[ new_t ] ~deleted:[ old_t ])
        updates;
      multiset_equal
        (Memory.contents (Network.memory built.Builder.result))
        (naive_chain fx 3 12))

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "rete"
    [
      ( "memory",
        [
          Alcotest.test_case "insert/flush" `Quick test_memory_insert_flush;
          Alcotest.test_case "delete" `Quick test_memory_delete;
          Alcotest.test_case "multiset semantics" `Quick test_memory_multiset;
          Alcotest.test_case "probe" `Quick test_memory_probe;
          Alcotest.test_case "probe pending free" `Quick test_memory_probe_pending_free;
          Alcotest.test_case "load" `Quick test_memory_load;
        ] );
      ( "paper_example",
        [
          Alcotest.test_case "initial PROGS1/CLERKS1" `Quick test_paper_example_initial;
          Alcotest.test_case "shared floor=1 subexpression" `Quick
            test_paper_example_shared_floor_subexpression;
          Alcotest.test_case "Susan insertion" `Quick test_paper_example_susan_insertion;
          Alcotest.test_case "deletion" `Quick test_paper_example_deletion;
          Alcotest.test_case "dot rendering" `Quick test_paper_example_dot_rendering;
          Alcotest.test_case "composite contents" `Quick test_paper_example_composite_contents;
        ] );
      ( "network",
        [
          Alcotest.test_case "indexed t-const screens covered only" `Quick
            test_indexed_tconst_screens_only_covered;
          Alcotest.test_case "unindexed t-const screens all" `Quick
            test_unindexed_tconst_screens_everything;
          Alcotest.test_case "flush batches per txn" `Quick
            test_network_flush_batches_per_transaction;
          Alcotest.test_case "other relations ignored" `Quick
            test_tokens_for_other_relations_ignored;
        ] );
      ( "builder",
        [
          Alcotest.test_case "right-deep initial contents" `Quick
            test_right_deep_initial_contents;
          Alcotest.test_case "right-deep maintenance" `Quick test_right_deep_maintenance;
          Alcotest.test_case "left-deep equivalent" `Quick test_left_deep_equivalent;
          Alcotest.test_case "shared beta across views" `Quick test_shared_beta_across_views;
          Alcotest.test_case "shared alpha P1/P2" `Quick test_shared_alpha_p1_p2;
          qc rvm_equals_recompute_property;
        ] );
      ( "treat",
        [
          Alcotest.test_case "initial contents" `Quick test_treat_initial_and_read;
          Alcotest.test_case "base maintenance" `Quick test_treat_maintenance;
          Alcotest.test_case "inner relation update" `Quick test_treat_inner_relation_update;
          Alcotest.test_case "shares alphas" `Quick test_treat_shares_alphas;
          Alcotest.test_case "shared alpha maintenance (regression)" `Quick
            test_treat_shared_alpha_maintenance;
          Alcotest.test_case "rejects non-eq" `Quick test_treat_rejects_non_eq;
          qc treat_random_property;
        ] );
      ( "optimizer",
        [
          Alcotest.test_case "base updates -> right-deep" `Quick
            test_optimizer_prefers_right_deep_for_base_updates;
          Alcotest.test_case "inner updates -> left-deep" `Quick
            test_optimizer_prefers_left_deep_for_inner_updates;
          Alcotest.test_case "single join -> left-deep" `Quick
            test_optimizer_single_join_is_left_deep;
          Alcotest.test_case "estimates ranked" `Quick test_optimizer_estimates_positive_and_ranked;
          Alcotest.test_case "profile weighting" `Quick test_optimizer_untouched_relation_is_free;
        ] );
    ]
