(* Tests for Dbproc.Index: B+-tree ordering/splitting/invariants and the
   static hash index, including their I/O charging. *)

open Dbproc.Storage
open Dbproc.Index

let make_btree ?(page_bytes = 200) ?(entry_bytes = 20) () =
  let c = Cost.create () in
  (* capacity 10 entries per node: splits happen quickly *)
  let io = Io.direct c ~page_bytes in
  (c, Btree.create ~io ~entry_bytes ~compare:Int.compare ())

(* ---------------------------------------------------------------- Btree *)

let test_btree_empty () =
  let _, t = make_btree () in
  Alcotest.(check int) "empty count" 0 (Btree.entry_count t);
  Alcotest.(check int) "height 1" 1 (Btree.height t);
  Alcotest.(check (list int)) "search misses" [] (Btree.search t 5);
  Btree.check_invariants t

let test_btree_insert_search () =
  let _, t = make_btree () in
  List.iter (fun k -> Btree.insert t k (k * 10)) [ 5; 3; 8; 1; 9 ];
  Alcotest.(check (list int)) "find 3" [ 30 ] (Btree.search t 3);
  Alcotest.(check (list int)) "find 9" [ 90 ] (Btree.search t 9);
  Alcotest.(check (list int)) "miss" [] (Btree.search t 7);
  Btree.check_invariants t

let test_btree_split_grows_height () =
  let _, t = make_btree () in
  Alcotest.(check int) "capacity" 10 (Btree.capacity t);
  for k = 1 to 11 do
    Btree.insert t k k
  done;
  Alcotest.(check bool) "height grew" true (Btree.height t >= 2);
  Btree.check_invariants t;
  for k = 1 to 11 do
    Alcotest.(check (list int)) "still findable" [ k ] (Btree.search t k)
  done

let test_btree_many_inserts () =
  let _, t = make_btree () in
  let keys = List.init 1000 (fun i -> (i * 7919) mod 1000) in
  List.iter (fun k -> Btree.insert t k k) keys;
  Btree.check_invariants t;
  Alcotest.(check int) "count" 1000 (Btree.entry_count t);
  Alcotest.(check bool) "height >= 3" true (Btree.height t >= 3)

let test_btree_duplicates () =
  let _, t = make_btree () in
  Btree.insert t 4 100;
  Btree.insert t 4 200;
  Btree.insert t 4 300;
  Alcotest.(check (list int)) "all copies, insertion order" [ 100; 200; 300 ] (Btree.search t 4);
  Btree.check_invariants t

let test_btree_duplicates_across_splits () =
  let _, t = make_btree () in
  (* 50 copies of the same key forces splits between duplicates. *)
  for i = 1 to 50 do
    Btree.insert t 7 i
  done;
  Btree.insert t 3 0;
  Btree.insert t 9 0;
  Btree.check_invariants t;
  Alcotest.(check int) "all 50 found" 50 (List.length (Btree.search t 7))

let test_btree_remove () =
  let _, t = make_btree () in
  List.iter (fun k -> Btree.insert t k k) [ 1; 2; 3 ];
  Alcotest.(check bool) "removed" true (Btree.remove t 2 (fun _ -> true));
  Alcotest.(check (list int)) "gone" [] (Btree.search t 2);
  Alcotest.(check bool) "remove again fails" false (Btree.remove t 2 (fun _ -> true));
  Alcotest.(check int) "count" 2 (Btree.entry_count t);
  Btree.check_invariants t

let test_btree_remove_specific_value () =
  let _, t = make_btree () in
  Btree.insert t 5 1;
  Btree.insert t 5 2;
  Alcotest.(check bool) "remove v=2" true (Btree.remove t 5 (( = ) 2));
  Alcotest.(check (list int)) "v=1 remains" [ 1 ] (Btree.search t 5)

let test_btree_range () =
  let _, t = make_btree () in
  List.iter (fun k -> Btree.insert t k k) [ 1; 3; 5; 7; 9; 11 ];
  let collect lo hi =
    let acc = ref [] in
    Btree.range t ~lo ~hi ~f:(fun k _ -> acc := k :: !acc);
    List.rev !acc
  in
  Alcotest.(check (list int)) "inclusive range" [ 3; 5; 7 ]
    (collect (Btree.Inclusive 3) (Btree.Inclusive 7));
  Alcotest.(check (list int)) "exclusive bounds" [ 5 ]
    (collect (Btree.Exclusive 3) (Btree.Exclusive 7));
  Alcotest.(check (list int)) "unbounded" [ 1; 3; 5; 7; 9; 11 ]
    (collect Btree.Unbounded Btree.Unbounded);
  Alcotest.(check (list int)) "half open" [ 9; 11 ] (collect (Btree.Inclusive 8) Btree.Unbounded)

let test_btree_range_order_large () =
  let _, t = make_btree () in
  let keys = List.init 500 (fun i -> (i * 131) mod 500) in
  List.iter (fun k -> Btree.insert t k k) keys;
  let acc = ref [] in
  Btree.iter t ~f:(fun k _ -> acc := k :: !acc);
  let got = List.rev !acc in
  Alcotest.(check (list int)) "sorted iteration" (List.sort compare keys) got

let test_btree_search_charges_descent () =
  let c, t = make_btree () in
  Cost.with_disabled c (fun () ->
      for k = 1 to 500 do
        Btree.insert t k k
      done);
  Cost.reset c;
  ignore (Btree.search t 250);
  (* A search must read at least [height] node pages and not absurdly more. *)
  let h = Btree.height t in
  let reads = Cost.page_reads c in
  if reads < h || reads > h + 2 then Alcotest.failf "search reads %d, height %d" reads h

let test_btree_insert_charges_writes () =
  let c, t = make_btree () in
  Cost.reset c;
  Btree.insert t 1 1;
  Alcotest.(check bool) "wrote the leaf" true (Cost.page_writes c >= 1)

let test_btree_range_after_removals () =
  let _, t = make_btree () in
  for k = 0 to 99 do
    Btree.insert t k k
  done;
  for k = 0 to 99 do
    if k mod 2 = 0 then ignore (Btree.remove t k (fun _ -> true))
  done;
  Btree.check_invariants t;
  let acc = ref [] in
  Btree.range t ~lo:(Btree.Inclusive 10) ~hi:(Btree.Exclusive 20) ~f:(fun k _ ->
      acc := k :: !acc);
  Alcotest.(check (list int)) "only odds remain" [ 11; 13; 15; 17; 19 ] (List.rev !acc)

let test_btree_empty_range () =
  let _, t = make_btree () in
  List.iter (fun k -> Btree.insert t k k) [ 1; 5; 9 ];
  let acc = ref 0 in
  Btree.range t ~lo:(Btree.Inclusive 6) ~hi:(Btree.Exclusive 9) ~f:(fun _ _ -> incr acc);
  Alcotest.(check int) "gap range empty" 0 !acc;
  Btree.range t ~lo:(Btree.Inclusive 100) ~hi:Btree.Unbounded ~f:(fun _ _ -> incr acc);
  Alcotest.(check int) "past-end range empty" 0 !acc

let btree_vs_model =
  (* Random insert/remove script against a sorted-list reference model. *)
  let gen = QCheck.(list (pair bool (int_bound 50))) in
  QCheck.Test.make ~name:"btree matches reference multiset" ~count:200 gen (fun script ->
      let _, t = make_btree () in
      let model = ref [] in
      List.iter
        (fun (is_insert, k) ->
          if is_insert then begin
            Btree.insert t k k;
            model := k :: !model
          end
          else begin
            let removed = Btree.remove t k (fun _ -> true) in
            let in_model = List.mem k !model in
            if removed <> in_model then failwith "remove disagreed with model";
            if in_model then begin
              let dropped = ref false in
              model :=
                List.filter
                  (fun x ->
                    if x = k && not !dropped then begin
                      dropped := true;
                      false
                    end
                    else true)
                  !model
            end
          end)
        script;
      Btree.check_invariants t;
      let got = ref [] in
      Btree.iter t ~f:(fun k _ -> got := k :: !got);
      List.rev !got = List.sort compare !model)

(* ----------------------------------------------------------- Hash_index *)

let make_hash ?(expected = 100) () =
  let c = Cost.create () in
  let io = Io.direct c ~page_bytes:400 in
  (c, Hash_index.create ~io ~entry_bytes:20 ~expected_entries:expected ~equal:Int.equal ())

let test_hash_insert_search () =
  let _, h = make_hash () in
  Hash_index.insert h 1 "a";
  Hash_index.insert h 2 "b";
  Hash_index.insert h 1 "c";
  Alcotest.(check (list string)) "duplicates in order" [ "a"; "c" ] (Hash_index.search h 1);
  Alcotest.(check (list string)) "single" [ "b" ] (Hash_index.search h 2);
  Alcotest.(check (list string)) "miss" [] (Hash_index.search h 3);
  Alcotest.(check int) "count" 3 (Hash_index.entry_count h)

let test_hash_remove () =
  let _, h = make_hash () in
  Hash_index.insert h 1 "a";
  Hash_index.insert h 1 "b";
  Alcotest.(check bool) "removed" true (Hash_index.remove h 1 (( = ) "a"));
  Alcotest.(check (list string)) "b remains" [ "b" ] (Hash_index.search h 1);
  Alcotest.(check bool) "absent" false (Hash_index.remove h 2 (fun _ -> true))

let test_hash_sizing () =
  let _, h = make_hash ~expected:1000 () in
  (* 20 entries per page at 70% target = 14 per bucket -> ~72 buckets *)
  Alcotest.(check bool) "bucket count reasonable" true
    (Hash_index.bucket_count h >= 50 && Hash_index.bucket_count h <= 100)

let test_hash_chain_growth () =
  let _, h = make_hash ~expected:1 () in
  (* One bucket: every insert chains into it. 20 entries/page. *)
  Alcotest.(check int) "single bucket" 1 (Hash_index.bucket_count h);
  for i = 1 to 45 do
    Hash_index.insert h i (string_of_int i)
  done;
  Alcotest.(check int) "3 chain pages" 3 (Hash_index.chain_length h 1);
  Alcotest.(check int) "page count" 3 (Hash_index.page_count h)

let test_hash_search_charges_chain () =
  let c, h = make_hash ~expected:1 () in
  Cost.with_disabled c (fun () ->
      for i = 1 to 45 do
        Hash_index.insert h i (string_of_int i)
      done);
  Cost.reset c;
  ignore (Hash_index.search h 7);
  Alcotest.(check int) "reads all 3 chain pages" 3 (Cost.page_reads c)

let test_hash_iter () =
  let _, h = make_hash () in
  for i = 1 to 30 do
    Hash_index.insert h i i
  done;
  let seen = ref [] in
  Hash_index.iter h ~f:(fun _ v -> seen := v :: !seen);
  Alcotest.(check (list int)) "all visited"
    (List.init 30 (fun i -> i + 1))
    (List.sort compare !seen)

let hash_vs_model =
  QCheck.Test.make ~name:"hash index matches reference multiset" ~count:200
    QCheck.(list (pair bool (int_bound 20)))
    (fun script ->
      let _, h = make_hash ~expected:10 () in
      let model = Hashtbl.create 16 in
      List.iter
        (fun (is_insert, k) ->
          if is_insert then begin
            Hash_index.insert h k k;
            Hashtbl.add model k k
          end
          else begin
            let removed = Hash_index.remove h k (fun _ -> true) in
            let in_model = Hashtbl.mem model k in
            if removed <> in_model then failwith "remove disagreed";
            if in_model then Hashtbl.remove model k
          end)
        script;
      Hashtbl.fold (fun k _ ok -> ok && List.mem k (Hash_index.search h k)) model true
      && Hash_index.entry_count h = Hashtbl.length model)

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "index"
    [
      ( "btree",
        [
          Alcotest.test_case "empty" `Quick test_btree_empty;
          Alcotest.test_case "insert/search" `Quick test_btree_insert_search;
          Alcotest.test_case "split grows height" `Quick test_btree_split_grows_height;
          Alcotest.test_case "1000 inserts" `Quick test_btree_many_inserts;
          Alcotest.test_case "duplicates" `Quick test_btree_duplicates;
          Alcotest.test_case "duplicates across splits" `Quick test_btree_duplicates_across_splits;
          Alcotest.test_case "remove" `Quick test_btree_remove;
          Alcotest.test_case "remove specific value" `Quick test_btree_remove_specific_value;
          Alcotest.test_case "range bounds" `Quick test_btree_range;
          Alcotest.test_case "sorted iteration" `Quick test_btree_range_order_large;
          Alcotest.test_case "search charges descent" `Quick test_btree_search_charges_descent;
          Alcotest.test_case "insert charges writes" `Quick test_btree_insert_charges_writes;
          Alcotest.test_case "range after removals" `Quick test_btree_range_after_removals;
          Alcotest.test_case "empty ranges" `Quick test_btree_empty_range;
          qc btree_vs_model;
        ] );
      ( "hash",
        [
          Alcotest.test_case "insert/search" `Quick test_hash_insert_search;
          Alcotest.test_case "remove" `Quick test_hash_remove;
          Alcotest.test_case "sizing" `Quick test_hash_sizing;
          Alcotest.test_case "chain growth" `Quick test_hash_chain_growth;
          Alcotest.test_case "search charges chain" `Quick test_hash_search_charges_chain;
          Alcotest.test_case "iter" `Quick test_hash_iter;
          qc hash_vs_model;
        ] );
    ]
