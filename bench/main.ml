(* The benchmark harness: regenerates every table and figure of the paper's
   evaluation (analytic model), runs the engine-measured counterparts
   (the sim- targets), prints the ablations called out in DESIGN.md, and times one
   Bechamel micro-benchmark per experiment.

   Usage:
     dune exec bench/main.exe                 -- everything
     dune exec bench/main.exe -- fig5 fig18   -- selected experiments
     dune exec bench/main.exe -- --no-bechamel
     dune exec bench/main.exe -- --quota 1.0  -- seconds per bechamel test
     dune exec bench/main.exe -- --seed 7     -- workload PRNG seed (default 42)
     dune exec bench/main.exe -- --jobs 4     -- domains for the sim sweeps (default 1)
     dune exec bench/main.exe -- --json FILE  -- machine-readable snapshot per experiment *)

open Dbproc
open Dbproc.Costmodel

let sim_p_sweep = [ 0.0; 0.2; 0.5; 0.8 ]

(* --seed / --jobs / --json state, set once by the arg parser before any
   experiment runs. *)
let the_seed = ref 42
let the_jobs = ref 1

(* --strategies comma-list filter (None = all five).  Restricts the fixed
   columns of ext-winregion so CI can run a cheap HOIVM-vs-AVM slice. *)
let the_strategies : Strategy.t list option ref = ref None
let json_out : string option ref = ref None
let experiments : (string * Obs.Export.json) list ref = ref []

(* Each experiment runs against its own engine context(s) and hands back
   the context its snapshot should come from — nothing is read from any
   shared registry, so concurrent experiments cannot cross-pollute an
   export.  The snapshot is taken right as the experiment finishes,
   before the bechamel section runs (whose quota-driven iteration counts
   would make it nondeterministic). *)
let record id (f : unit -> Obs.Ctx.t) =
  let ctx = f () in
  if !json_out <> None && not (List.mem_assoc id !experiments) then
    experiments := (id, Obs.Export.snapshot ctx) :: !experiments

(* ------------------------------------------------- Simulation sections *)

let rec chunks n = function
  | [] -> []
  | l ->
    let rec take k acc = function
      | rest when k = 0 -> (List.rev acc, rest)
      | [] -> (List.rev acc, [])
      | x :: rest -> take (k - 1) (x :: acc) rest
    in
    let row, rest = take n [] l in
    row :: chunks n rest

let print_sim_comparison ?(label = "") ?(params = Workload.Driver.default_sim_params) ~model ()
    =
  let name =
    match model with Model.Model1 -> "model1" | Model.Model2 -> "model2"
  in
  Printf.printf "== sim-%s%s: engine-measured vs analytic (scaled: N=%g, N1=%g, N2=%g, q=%g)\n"
    (if label = "" then name else label)
    (if label = "" then "" else Printf.sprintf " [%s]" name)
    params.Params.n params.Params.n1 params.Params.n2 params.Params.q;
  Printf.printf
    "paper: who wins and the crossovers should match the analytic curves; absolute numbers \
     within ~2x.\n\n";
  let table =
    Util.Ascii_table.create
      ~header:
        (("P"
         :: List.concat_map
              (fun s ->
                let n = Strategy.short_name s in
                [ n ^ " meas"; n ^ " model" ])
              Strategy.all)
        @ [ "ok" ])
      ()
  in
  (* Every (P, strategy) point is independent — fan them all out at once
     and regroup per P afterwards.  The jobs=1 path goes through the same
     code, so the table and the merged snapshot are byte-identical at any
     job count. *)
  let tasks =
    List.concat_map (fun p -> List.map (fun s -> (p, s)) Strategy.all) sim_p_sweep
  in
  let results =
    Workload.Parallel.map ~jobs:!the_jobs
      (fun (p, s) ->
        let params = Params.with_update_probability params p in
        Workload.Driver.run_strategy ~seed:!the_seed ~model ~params s)
      tasks
  in
  List.iter2
    (fun p row ->
      let cells =
        List.concat_map
          (fun (r : Workload.Driver.result) ->
            [
              Printf.sprintf "%.0f" r.measured_ms_per_query;
              Printf.sprintf "%.0f" r.analytic_ms_per_query;
            ])
          row
      in
      let consistent =
        List.for_all (fun (r : Workload.Driver.result) -> r.consistent) row
      in
      Util.Ascii_table.add_row table
        ((Printf.sprintf "%.2f" p :: cells) @ [ (if consistent then "yes" else "NO") ]))
    sim_p_sweep
    (chunks (List.length Strategy.all) results);
  Util.Ascii_table.print table;
  print_newline ();
  Workload.Parallel.merge_obs results

let print_ablation_buffer () =
  print_endline "== ablation: buffer pool (paper assumes none; LRU buffer added)";
  let params = Workload.Driver.default_sim_params in
  let probe buffer_pages =
    let db = Workload.Database.build ~seed:11 ?buffer_pages ~model:Model.Model1 params in
    Storage.Cost.reset db.Workload.Database.cost;
    for _ = 1 to 3 do
      List.iter
        (fun def -> ignore (Query.Executor.run (Query.Planner.compile def)))
        (Workload.Database.all_defs db)
    done;
    Storage.Cost.page_reads db.Workload.Database.cost
  in
  let table =
    Util.Ascii_table.create ~header:[ "configuration"; "page reads (3x all procs)" ] ()
  in
  Util.Ascii_table.add_row table [ "direct (paper model)"; string_of_int (probe None) ];
  Util.Ascii_table.add_row table [ "LRU 200 pages"; string_of_int (probe (Some 200)) ];
  Util.Ascii_table.add_row table [ "LRU 100k pages"; string_of_int (probe (Some 100_000)) ];
  Util.Ascii_table.print table;
  print_newline ()

let print_ablation_yao () =
  print_endline "== ablation: Appendix-A approximation vs exact Yao vs Cardenas";
  let table =
    Util.Ascii_table.create ~header:[ "n"; "m"; "k"; "exact"; "paper approx"; "cardenas" ] ()
  in
  List.iter
    (fun (n, m, k) ->
      Util.Ascii_table.add_row table
        [
          string_of_int n;
          string_of_int m;
          string_of_int k;
          Printf.sprintf "%.3f" (Util.Yao.exact ~n ~m ~k);
          Printf.sprintf "%.3f"
            (Util.Yao.paper ~n:(float_of_int n) ~m:(float_of_int m) ~k:(float_of_int k));
          Printf.sprintf "%.3f" (Util.Yao.cardenas ~m:(float_of_int m) ~k:(float_of_int k));
        ])
    [
      (10_000, 250, 1);
      (10_000, 250, 10);
      (10_000, 250, 100);
      (10_000, 250, 1000);
      (100, 3, 2);
      (40, 2, 5);
    ];
  Util.Ascii_table.print table;
  print_newline ()

let print_ablation_rete_shape () =
  print_endline "== ablation: Rete join-tree shape, model 2 (right-deep = paper's network)";
  let params = Workload.Driver.default_sim_params in
  let run shape =
    Workload.Driver.run_strategy ~seed:!the_seed ~rvm_shape:shape ~model:Model.Model2
      ~params Strategy.Update_cache_rvm
  in
  let right = run `Right_deep and left = run `Left_deep in
  let table =
    Util.Ascii_table.create ~header:[ "shape"; "measured ms/query"; "consistent" ] ()
  in
  Util.Ascii_table.add_row table
    [
      "right-deep (paper)";
      Printf.sprintf "%.1f" right.measured_ms_per_query;
      (if right.consistent then "yes" else "NO");
    ];
  Util.Ascii_table.add_row table
    [
      "left-deep";
      Printf.sprintf "%.1f" left.measured_ms_per_query;
      (if left.consistent then "yes" else "NO");
    ];
  Util.Ascii_table.print table;
  print_newline ()

let print_ablation_obs_overhead () =
  print_endline "== ablation: observability overhead (registry enabled vs disabled)";
  print_endline
    "counters are int-array bumps behind one flag test; the two wall-clock times\n\
     should agree within noise (~1%).\n";
  let params = Workload.Driver.default_sim_params in
  (* One shared context whose registry the toggle acts on; every timed
     run charges it. *)
  let ctx = Obs.Ctx.create () in
  let timed () =
    let t0 = Sys.time () in
    for _ = 1 to 10 do
      ignore
        (Workload.Driver.run_strategy ~seed:!the_seed ~check_consistency:false ~ctx
           ~model:Model.Model1 ~params Strategy.Update_cache_avm)
    done;
    Sys.time () -. t0
  in
  ignore (timed ());
  (* warm-up, then interleave the arms and keep each arm's best time —
     min-of-N suppresses scheduler and GC noise far below the per-run
     variance *)
  let on = ref Float.infinity and off = ref Float.infinity in
  for _ = 1 to 4 do
    Obs.Metrics.set_enabled (Obs.Ctx.metrics ctx) true;
    on := Float.min !on (timed ());
    Obs.Metrics.set_enabled (Obs.Ctx.metrics ctx) false;
    off := Float.min !off (timed ())
  done;
  Printf.printf "enabled: %.3f s   disabled: %.3f s   delta: %+.1f%%\n\n" !on !off
    (if !off > 0.0 then 100.0 *. (!on -. !off) /. !off else 0.0)

let print_network_figures () =
  (* Figures 3 and 16 of the paper are network diagrams; emit the same
     structures as Graphviz dot from a small live population. *)
  let params =
    { Workload.Driver.default_sim_params with Params.n = 1000.0; n1 = 1.0; n2 = 1.0 }
  in
  List.iter
    (fun (label, model) ->
      let db = Workload.Database.build ~seed:3 ~model params in
      let builder =
        Rete.Builder.create ~io:db.Workload.Database.io ~record_bytes:100 ()
      in
      List.iter
        (fun def -> ignore (Rete.Builder.add_view builder def))
        (Workload.Database.all_defs db);
      Printf.printf "== %s: Rete network for one P1 + one P2 procedure (Graphviz dot)\n"
        label;
      print_string (Rete.Network.to_dot (Rete.Builder.network builder));
      print_newline ())
    [ ("fig3-network", Model.Model1); ("fig16-network", Model.Model2) ]

let print_crossovers () =
  print_endline "== headline anchors";
  (match Figures.crossover_sf Model.Model2 Params.default with
  | Some sf -> Printf.printf "model 2 AVM/RVM crossover: SF = %.3f (paper: ~0.47)\n" sf
  | None -> print_endline "model 2 AVM/RVM crossover: none found");
  (match Figures.crossover_sf Model.Model1 Params.default with
  | Some sf -> Printf.printf "model 1 AVM/RVM crossover: SF = %.3f (paper: near 1)\n" sf
  | None -> print_endline "model 1 AVM/RVM crossover: none (RVM never cheaper)");
  let p7 = Params.with_update_probability { Params.default with Params.f = 0.0001 } 0.1 in
  let ar = Model.cost Model.Model1 p7 Strategy.Always_recompute in
  let ci = Model.cost Model.Model1 p7 Strategy.Cache_invalidate in
  let uc = Model.cost Model.Model1 p7 Strategy.Update_cache_avm in
  Printf.printf
    "fig7 anchor (f=0.0001, P=0.1): AR/CI = %.1fx, AR/UC = %.1fx (paper: ~5x and ~7x)\n\n"
    (ar /. ci) (ar /. uc)

(* ----------------------------------------------- Extension experiments *)

let print_ext_update_mix () =
  print_endline "== ext-update-mix: updates against R2 as well as R1 (model 2)";
  print_endline
    "extension: the paper's Section 8 flags update frequency per relation as unanalyzed.\n\
     Expect UC to deteriorate as R2 churns (RVM worst: its precomputed beta-memory must\n\
     be maintained), while AR and CI barely move.\n";
  let params = Workload.Driver.default_sim_params in
  let table =
    Util.Ascii_table.create
      ~header:
        (("R2 fraction" :: List.map Strategy.short_name Strategy.all)
        @ [ "RVM-opt"; "ok" ])
      ()
  in
  let all_runs = ref [] in
  List.iter
    (fun mix ->
      let results =
        Workload.Driver.run_all ~seed:!the_seed ~r2_update_fraction:mix ~model:Model.Model2
          ~params ()
      in
      (* The statically optimized network: shape chosen per the update
         profile (Section 8's "statistics on relative update frequency"). *)
      let opt =
        Workload.Driver.run_strategy ~seed:!the_seed
          ~rvm_shape:(`Auto [ ("R1", 1.0 -. mix); ("R2", mix) ])
          ~r2_update_fraction:mix ~model:Model.Model2 ~params Strategy.Update_cache_rvm
      in
      all_runs := (opt :: List.rev results) @ !all_runs;
      let cells =
        List.map
          (fun (r : Workload.Driver.result) -> Printf.sprintf "%.0f" r.measured_ms_per_query)
          results
        @ [ Printf.sprintf "%.0f" opt.measured_ms_per_query ]
      in
      let ok =
        opt.consistent
        && List.for_all (fun (r : Workload.Driver.result) -> r.consistent) results
      in
      Util.Ascii_table.add_row table
        ((Printf.sprintf "%.2f" mix :: cells) @ [ (if ok then "yes" else "NO") ]))
    [ 0.0; 0.25; 0.5; 1.0 ];
  Util.Ascii_table.print table;
  print_newline ();
  Workload.Parallel.merge_obs (List.rev !all_runs)

let print_ext_wal () =
  print_endline "== ext-wal: cost per invalidation under the Section-3 recording schemes";
  print_endline
    "extension: drive one invalidation/revalidation workload through each scheme and\n\
     price it; the effective C_inval is what fig4 vs fig5 parameterizes.\n";
  let procs = 200 in
  let transitions = 2_000 in
  let ctx = Obs.Ctx.create () in
  let table =
    Util.Ascii_table.create
      ~header:[ "scheme"; "effective C_inval (ms)"; "recovery I/Os"; "recovered ok" ]
      ()
  in
  List.iter
    (fun scheme ->
      let cost = Storage.Cost.create ~ctx () in
      let io = Storage.Io.direct cost ~page_bytes:4000 in
      let tbl = Proc.Inval_table.create ~io ~scheme ~procs in
      let prng = Util.Prng.create 17 in
      for _ = 1 to transitions do
        let proc = Util.Prng.int prng procs in
        if Proc.Inval_table.is_valid tbl proc then Proc.Inval_table.set_invalid tbl proc
        else Proc.Inval_table.set_valid tbl proc;
        if Util.Prng.int prng 25 = 0 then Proc.Inval_table.end_of_transaction tbl
      done;
      Proc.Inval_table.end_of_transaction tbl;
      let work_ms = Storage.Cost.total_ms Storage.Cost.default_charges cost in
      let per_inval = work_ms /. float_of_int (Proc.Inval_table.invalidations_recorded tbl) in
      Storage.Cost.reset cost;
      let recovered = Proc.Inval_table.crash_and_recover tbl in
      let recovery_ios = Storage.Cost.page_reads cost + Storage.Cost.page_writes cost in
      let ok =
        List.for_all
          (fun p -> Proc.Inval_table.is_valid recovered p = Proc.Inval_table.is_valid tbl p)
          (List.init procs Fun.id)
      in
      Util.Ascii_table.add_row table
        [
          Proc.Inval_table.scheme_name scheme;
          Printf.sprintf "%.2f" per_inval;
          string_of_int recovery_ios;
          (if ok then "yes" else "NO");
        ])
    [
      Proc.Inval_table.Page_flag;
      Proc.Inval_table.Nvram;
      Proc.Inval_table.Wal_logged { checkpoint_every = 500 };
      Proc.Inval_table.Wal_logged { checkpoint_every = 50 };
    ];
  Util.Ascii_table.print table;
  print_newline ();
  ctx

let print_ext_faults () =
  print_endline "== ext-faults: fault-injection ablation (model 1)";
  print_endline
    "extension: three arms per strategy through the crash harness.  'off' runs with no\n\
     injector installed; 'disabled' installs one with zero fault probability and must\n\
     charge exactly the same (the fault layer is free when idle); 'faulted' injects\n\
     transient failures plus three crash points and must still reproduce the oracle's\n\
     result digest, paying for retries and recovery in simulated time.\n";
  let params = Workload.Driver.default_sim_params in
  let table =
    Util.Ascii_table.create
      ~header:
        [ "strategy"; "off ms"; "disabled ms"; "drift"; "faulted ms"; "crashes"; "faults"; "ok" ]
      ()
  in
  let merged = Obs.Ctx.create () in
  let all_ok = ref true in
  List.iter
    (fun strategy ->
      let run ?fault_config ?(crash_points = []) () : Workload.Driver.crash_result =
        Workload.Driver.run_with_crashes ~seed:!the_seed ?fault_config ~crash_points
          ~model:Model.Model1 ~params strategy
      in
      let off = run () in
      let disabled = run ~fault_config:Fault.Injector.no_faults () in
      let touches = disabled.cr_stats.cs_touches in
      let faulted =
        run ~fault_config:Fault.Injector.default_config
          ~crash_points:[ touches / 4; touches / 2; 3 * touches / 4 ]
          ()
      in
      List.iter
        (fun (r : Workload.Driver.crash_result) -> Obs.Ctx.merge_into ~into:merged r.cr_obs)
        [ off; disabled; faulted ];
      let drift_free =
        disabled.cr_total_ms = off.cr_total_ms
        && disabled.cr_page_reads = off.cr_page_reads
        && disabled.cr_page_writes = off.cr_page_writes
      in
      let oracle_digest = Workload.Driver.result_digest off in
      let digest_ok =
        Workload.Driver.result_digest disabled = oracle_digest
        && Workload.Driver.result_digest faulted = oracle_digest
        && faulted.cr_consistent
      in
      if not (drift_free && digest_ok) then all_ok := false;
      Util.Ascii_table.add_row table
        [
          Strategy.name strategy;
          Printf.sprintf "%.0f" off.cr_total_ms;
          Printf.sprintf "%.0f" disabled.cr_total_ms;
          (if drift_free then "none" else "DRIFT");
          Printf.sprintf "%.0f" faulted.cr_total_ms;
          string_of_int faulted.cr_stats.cs_crashes;
          string_of_int faulted.cr_stats.cs_faults_injected;
          (if digest_ok then "yes" else "NO");
        ])
    Strategy.all;
  Util.Ascii_table.print table;
  print_newline ();
  Printf.printf "verdict: %s\n\n"
    (if !all_ok then "disabled arm drift-free, faulted arms match the oracle"
     else "ABLATION FAILED — see table");
  merged

let print_ext_aggregates () =
  print_endline "== ext-aggregates: differentially maintained aggregate procedures";
  print_endline
    "extension: intro feature (5).  A COUNT/SUM/MAX rollup over a P1-style selection is\n\
     maintained per update and compared with recomputation.\n";
  let params = Workload.Driver.default_sim_params in
  let ctx = Obs.Ctx.create () in
  let db = Workload.Database.build ~seed:23 ~ctx ~model:Model.Model1 params in
  let def = List.hd db.Workload.Database.p1_defs in
  let schema = Query.View_def.schema def in
  let agg =
    Avm.Aggregate_view.create ~record_bytes:100
      ~group_by:[ Schema.index_of schema "R1.a" ]
      ~aggs:[ Avm.Aggregate_view.Count; Avm.Aggregate_view.Sum (Schema.index_of schema "R1.sel") ]
      def
  in
  let prng = Util.Prng.create 29 in
  let charges = Storage.Cost.default_charges in
  let maint = ref 0.0 and recompute = ref 0.0 in
  let screen (d : Query.View_def.t) tuples =
    List.filter (Predicate.eval d.Query.View_def.base.restriction) tuples
  in
  for _ = 1 to 20 do
    let changes = Workload.Database.random_update db prng in
    let old_new =
      Storage.Cost.with_disabled db.Workload.Database.cost (fun () ->
          Relation.update_batch db.Workload.Database.r1 changes)
    in
    let olds = List.map fst old_new and news = List.map snd old_new in
    Storage.Cost.reset db.Workload.Database.cost;
    Avm.Aggregate_view.apply_base_delta agg ~inserted:(screen def news)
      ~deleted:(screen def olds);
    maint := !maint +. Storage.Cost.total_ms charges db.Workload.Database.cost;
    Storage.Cost.reset db.Workload.Database.cost;
    ignore (Query.Executor.run (Query.Planner.compile def));
    recompute := !recompute +. Storage.Cost.total_ms charges db.Workload.Database.cost
  done;
  Printf.printf "20 update transactions: maintain rollup %.0f ms total; recompute the\n" !maint;
  Printf.printf "underlying selection each time instead: %.0f ms; groups kept: %d; stored\n"
    !recompute (Avm.Aggregate_view.group_count agg);
  Printf.printf "state matches recompute: %b\n\n" (Avm.Aggregate_view.matches_recompute agg);
  ctx

(* Drive a TREAT engine through the driver's workload shape. *)
let run_treat ~ctx ~model ~params ~mix ~seed =
  let db = Workload.Database.build ~seed ~ctx ~model params in
  let treat =
    Rete.Treat.create ~io:db.Workload.Database.io ~record_bytes:100 ()
  in
  let ids = List.map (Rete.Treat.add_view treat) (Workload.Database.all_defs db) in
  let arr = Array.of_list ids in
  let q = int_of_float params.Params.q and k = int_of_float params.Params.k in
  let prng = Util.Prng.create (seed + 1) in
  let ops = Array.init (q + k) (fun i -> if i < q then `Q else `U) in
  Util.Prng.shuffle prng ops;
  Storage.Cost.reset db.Workload.Database.cost;
  Array.iter
    (fun op ->
      match op with
      | `Q -> ignore (Rete.Treat.read treat arr.(Util.Prng.int prng (Array.length arr)))
      | `U ->
        let target_r2 = mix > 0.0 && Util.Prng.float prng < mix in
        let rel, changes =
          if target_r2 then
            (db.Workload.Database.r2, Workload.Database.random_update_r2 db prng)
          else (db.Workload.Database.r1, Workload.Database.random_update db prng)
        in
        let old_new =
          Storage.Cost.with_disabled db.Workload.Database.cost (fun () ->
              Relation.update_batch rel changes)
        in
        Rete.Treat.apply_delta treat ~rel:(Relation.name rel)
          ~inserted:(List.map snd old_new)
          ~deleted:(List.map fst old_new))
    ops;
  let ms =
    Storage.Cost.total_ms Storage.Cost.default_charges db.Workload.Database.cost
    /. float_of_int q
  in
  let ok = List.for_all (fun id -> Rete.Treat.matches_recompute treat id) ids in
  (ms, ok)

let print_ext_treat () =
  print_endline "== ext-treat: TREAT (alpha-memories only) vs AVM and RVM (model 2)";
  print_endline
    "extension: TREAT (Miranker 1987) is the contemporaneous no-beta-memory alternative\n\
     the production-system literature set against Rete.  No beta upkeep means R2 churn\n\
     hurts less than RVM; probing selected alphas beats AVM's base-relation probes.\n";
  let params = Workload.Driver.default_sim_params in
  let ctx = Obs.Ctx.create () in
  let table =
    Util.Ascii_table.create ~header:[ "R2 fraction"; "AVM"; "TREAT"; "RVM"; "ok" ] ()
  in
  List.iter
    (fun mix ->
      let avm =
        Workload.Driver.run_strategy ~seed:!the_seed ~r2_update_fraction:mix
          ~model:Model.Model2 ~params Strategy.Update_cache_avm
      in
      let rvm =
        Workload.Driver.run_strategy ~seed:!the_seed ~r2_update_fraction:mix
          ~model:Model.Model2 ~params Strategy.Update_cache_rvm
      in
      Obs.Ctx.merge_into ~into:ctx avm.Workload.Driver.obs;
      Obs.Ctx.merge_into ~into:ctx rvm.Workload.Driver.obs;
      let treat_ms, treat_ok =
        run_treat ~ctx ~model:Model.Model2 ~params ~mix ~seed:!the_seed
      in
      Util.Ascii_table.add_row table
        [
          Printf.sprintf "%.2f" mix;
          Printf.sprintf "%.0f" avm.measured_ms_per_query;
          Printf.sprintf "%.0f" treat_ms;
          Printf.sprintf "%.0f" rvm.measured_ms_per_query;
          (if treat_ok && avm.consistent && rvm.consistent then "yes" else "NO");
        ])
    [ 0.0; 0.5; 1.0 ];
  Util.Ascii_table.print table;
  print_newline ();
  ctx

let print_ext_latency () =
  print_endline "== ext-latency: access-cost distribution per strategy (P = 0.3, model 1)";
  print_endline
    "extension: the paper compares means only.  Per-access distributions differ sharply:\n\
     CI is bimodal (cheap hits vs recompute-priced misses), UC is uniform cheap reads\n\
     with the cost shifted into updates, AR is uniformly expensive.\n";
  let params =
    Params.with_update_probability
      { Workload.Driver.default_sim_params with Params.q = 120.0 }
      0.3
  in
  let table =
    Util.Ascii_table.create
      ~header:[ "strategy"; "mean"; "p50"; "p95"; "max"; "update-side mean" ]
      ()
  in
  let results =
    Workload.Driver.run_all ~seed:!the_seed ~check_consistency:false ~model:Model.Model1
      ~params ()
  in
  List.iter
    (fun (r : Workload.Driver.result) ->
      let query_ms =
        List.filter_map (fun (k, ms) -> if k = `Query then Some ms else None) r.per_op
      in
      let update_ms =
        List.filter_map (fun (k, ms) -> if k = `Update then Some ms else None) r.per_op
      in
      let s = Util.Stats.summarize query_ms in
      Util.Ascii_table.add_row table
        [
          Strategy.short_name r.strategy;
          Printf.sprintf "%.0f" s.Util.Stats.mean;
          Printf.sprintf "%.0f" s.Util.Stats.p50;
          Printf.sprintf "%.0f" s.Util.Stats.p95;
          Printf.sprintf "%.0f" s.Util.Stats.max;
          (if update_ms = [] then "-" else Printf.sprintf "%.0f" (Util.Stats.mean update_ms));
        ])
    results;
  Util.Ascii_table.print table;
  print_newline ();
  Workload.Parallel.merge_obs results

let print_ext_sensitivity () =
  print_endline "== ext-sensitivity: cost elasticity per parameter (model 1, defaults)";
  print_endline
    "extension: elasticity = %change in cost per %change in parameter at the Figure-2\n\
     operating point.  Expect: AR insensitive to everything but f and N; UC driven by k\n\
     and the object-count parameters; CI spiked by C_inval; only RVM responds to SF.\n";
  let table =
    Util.Ascii_table.create
      ~header:("parameter" :: List.map Strategy.short_name Strategy.all)
      ()
  in
  List.iter
    (fun (name, cells) ->
      Util.Ascii_table.add_row table
        (name :: List.map (fun (_, e) -> Printf.sprintf "%+.2f" e) cells))
    (Sensitivity.table Model.Model1 Params.default);
  Util.Ascii_table.print table;
  print_newline ();
  (* analytic only: nothing charged, snapshot an empty context *)
  Obs.Ctx.create ()

let print_ext_nway () =
  print_endline "== ext-nway: AVM vs RVM as the join chain grows";
  print_endline
    "extension: Section 8 argues precomputed subexpressions let RVM 'limit the total\n\
     number of joins' for chains of 3+ relations.  Updates hit C1 only; f2 = 1 so delta\n\
     tuples traverse the whole chain.  Expect AVM maintenance to grow with chain length\n\
     and RVM's to stay flat (one probe into the precomputed spine).\n";
  let params =
    {
      Workload.Driver.default_sim_params with
      Params.f = 0.005;
      f2 = 1.0;
      k = 100.0;
      q = 50.0;
      n2 = 10.0;
    }
  in
  let ctx = Obs.Ctx.create () in
  let results = Workload.Nway.sweep ~seed:!the_seed ~ctx ~max_length:6 ~params () in
  let table =
    Util.Ascii_table.create
      ~header:
        [ "chain length"; "AVM meas"; "AVM model"; "RVM meas"; "RVM model"; "ok" ]
      ()
  in
  let rec pair = function
    | (a : Workload.Nway.result) :: (r : Workload.Nway.result) :: rest ->
      let model s = Nway_model.maintenance_per_update params ~chain_length:a.chain_length s in
      Util.Ascii_table.add_row table
        [
          string_of_int a.chain_length;
          Printf.sprintf "%.0f" a.maintenance_ms_per_update;
          Printf.sprintf "%.0f" (model Strategy.Update_cache_avm);
          Printf.sprintf "%.0f" r.maintenance_ms_per_update;
          Printf.sprintf "%.0f" (model Strategy.Update_cache_rvm);
          (if a.consistent && r.consistent then "yes" else "NO");
        ];
      pair rest
    | _ -> ()
  in
  pair results;
  Util.Ascii_table.print table;
  print_newline ();
  ctx

let run_adaptive ~ctx ~model ~params ~seed =
  (* Mirror the driver's op sequence against the Adaptive selector. *)
  let db = Workload.Database.build ~seed ~ctx ~model params in
  let a =
    Proc.Adaptive.create
      ~config:{ Proc.Adaptive.default_config with Proc.Adaptive.window = 10 }
      ~io:db.Workload.Database.io ~record_bytes:100 ()
  in
  let ids =
    List.map (fun def -> Proc.Adaptive.register a def) (Workload.Database.all_defs db)
  in
  let arr = Array.of_list ids in
  let q = int_of_float params.Params.q and k = int_of_float params.Params.k in
  let prng = Util.Prng.create (seed + 1) in
  let ops = Array.init (q + k) (fun i -> if i < q then `Q else `U) in
  Util.Prng.shuffle prng ops;
  Storage.Cost.reset db.Workload.Database.cost;
  Array.iter
    (fun op ->
      match op with
      | `Q -> ignore (Proc.Adaptive.access a arr.(Util.Prng.int prng (Array.length arr)))
      | `U ->
        let changes = Workload.Database.random_update db prng in
        let old_new =
          Storage.Cost.with_disabled db.Workload.Database.cost (fun () ->
              Relation.update_batch db.Workload.Database.r1 changes)
        in
        Proc.Adaptive.on_update a ~rel:db.Workload.Database.r1 ~changes:old_new)
    ops;
  let total =
    Storage.Cost.total_ms Storage.Cost.default_charges db.Workload.Database.cost
  in
  let consistent = List.for_all (fun id -> Proc.Adaptive.matches_recompute a id) ids in
  (total /. float_of_int q, Proc.Adaptive.switches a, consistent)

let print_ext_adaptive () =
  print_endline "== ext-adaptive: per-procedure strategy selection (Section 8's decision problem)";
  print_endline
    "extension: every procedure starts under CI and switches by observed conflict rate\n\
     and object size.  Adaptive should roughly track the cheapest fixed strategy.\n";
  let params = Workload.Driver.default_sim_params in
  let ctx = Obs.Ctx.create () in
  let table =
    Util.Ascii_table.create
      ~header:[ "P"; "best fixed (measured)"; "adaptive"; "switches"; "ok" ]
      ()
  in
  List.iter
    (fun p ->
      let params = Params.with_update_probability params p in
      let fixed =
        Workload.Driver.run_all ~seed:!the_seed ~check_consistency:false ~model:Model.Model1
          ~params ()
      in
      List.iter
        (fun (r : Workload.Driver.result) ->
          Obs.Ctx.merge_into ~into:ctx r.Workload.Driver.obs)
        fixed;
      let best =
        List.fold_left
          (fun acc (r : Workload.Driver.result) ->
            match acc with
            | Some (_, c) when c <= r.measured_ms_per_query -> acc
            | _ -> Some (Strategy.short_name r.strategy, r.measured_ms_per_query))
          None fixed
      in
      let adaptive_ms, switches, ok =
        run_adaptive ~ctx ~model:Model.Model1 ~params ~seed:!the_seed
      in
      let best_name, best_ms = Option.get best in
      Util.Ascii_table.add_row table
        [
          Printf.sprintf "%.2f" p;
          Printf.sprintf "%s %.0f" best_name best_ms;
          Printf.sprintf "%.0f" adaptive_ms;
          string_of_int switches;
          (if ok then "yes" else "NO");
        ])
    [ 0.0; 0.2; 0.5; 0.8 ];
  Util.Ascii_table.print table;
  print_newline ();
  ctx

(* Steady-state cost per access over the second half of the op sequence:
   all strategy work in the window (query costs plus update-side
   maintenance, the paper's accounting) divided by the window's accesses.
   Trimming the first half excludes one-time convergence work (adaptive
   migrations, first cold misses) from the comparison. *)
let steady_state_ms (r : Workload.Driver.result) =
  let ops = r.Workload.Driver.per_op in
  let n = List.length ops in
  let tail = List.filteri (fun i _ -> i >= n / 2) ops in
  let total = List.fold_left (fun acc (_, ms) -> acc +. ms) 0.0 tail in
  let queries =
    List.length (List.filter (function `Query, _ -> true | `Update, _ -> false) tail)
  in
  if queries = 0 then 0.0 else total /. float_of_int queries

let print_ext_winregion () =
  print_endline
    "== ext-winregion: adaptive selector vs fixed strategies across the (P, f, skew) grid";
  print_endline
    "extension: at every grid point the manager-level selector (model placement at\n\
     the nominal P, online mix/selectivity estimates -> closed-form model -> charged\n\
     migration) should land within 10% of the best fixed strategy's steady-state\n\
     cost per access.  The sweep samples the paper's three win regions along their\n\
     curved boundaries: AVM-win (P <= 0.5), the crossover band (P = 0.9, f <= 0.01,\n\
     where a mixed population can beat every uniform strategy), and AR-win.  The\n\
     AR-win sample at f = 0.05 sits at P = 0.97 because the closed form prices P2\n\
     differential maintenance below the engine's measured cost at high update\n\
     rates, so right on the crossover curve a model-driven selector can sit on the\n\
     wrong side; the criterion targets points where a region has a clear winner.\n\
     skew > 0 points draw update victims from a hot/cold model (that fraction of\n\
     R1's tuples takes the rest of the updates) -- the frontier beyond the paper,\n\
     where HOIVM's heavy-key fast path and deferred coalesced flush should beat\n\
     all four paper strategies.  --strategies ar,ci,avm,rvm,hoivm restricts the\n\
     fixed columns (the adaptive row runs only with the full set).\n";
  let base =
    { Workload.Driver.default_sim_params with Params.q = 240.0; k = 240.0 }
  in
  let ctx = Obs.Ctx.create () in
  let fixed_strategies =
    match !the_strategies with Some ss -> ss | None -> Strategy.all
  in
  let with_adaptive = !the_strategies = None in
  let table =
    Util.Ascii_table.create
      ~header:
        ([ "P"; "f"; "skew" ]
        @ List.map Strategy.short_name fixed_strategies
        @ (if with_adaptive then [ "adaptive"; "final mix"; "migr"; "vs best"; "ok" ]
           else [])
        @ [ "winner" ])
      ()
  in
  let mix (r : Workload.Driver.result) =
    let count s =
      List.length (List.filter (fun (_, s') -> s' = s) r.Workload.Driver.final_strategies)
    in
    Printf.sprintf "ar:%d ci:%d avm:%d rvm:%d ho:%d"
      (count Strategy.Always_recompute)
      (count Strategy.Cache_invalidate)
      (count Strategy.Update_cache_avm)
      (count Strategy.Update_cache_rvm)
      (count Strategy.Update_cache_hoivm)
  in
  let all_ok = ref true in
  let hoivm_wins_skewed = ref 0 in
  List.iter
    (fun (p, f, skew) ->
      let params = Params.with_update_probability { base with Params.f } p in
      let runs =
        Workload.Parallel.map ~jobs:!the_jobs
          (fun (s, ad) ->
            Workload.Driver.run_strategy ~seed:!the_seed ~check_consistency:false
              ~update_skew:skew ~adaptive:ad ~adaptive_window:4 ~model:Model.Model1
              ~params s)
          (List.map (fun s -> (s, false)) fixed_strategies
          @ (if with_adaptive then [ (Strategy.Always_recompute, true) ] else []))
      in
      List.iter
        (fun (r : Workload.Driver.result) ->
          Obs.Ctx.merge_into ~into:ctx r.Workload.Driver.obs)
        runs;
      let fixed_ms =
        List.map steady_state_ms
          (List.filteri (fun i _ -> i < List.length fixed_strategies) runs)
      in
      let best = List.fold_left Float.min (List.hd fixed_ms) (List.tl fixed_ms) in
      let winner =
        fst
          (List.fold_left2
             (fun (ws, wc) s c -> if c < wc then (Strategy.short_name s, c) else (ws, wc))
             ("?", Float.infinity) fixed_strategies fixed_ms)
      in
      (if skew > 0.0 && winner = "HOIVM" then incr hoivm_wins_skewed);
      let adaptive_cells =
        if not with_adaptive then []
        else begin
          let adaptive_run = List.nth runs (List.length fixed_strategies) in
          let ad = steady_state_ms adaptive_run in
          let ratio = if best > 0.0 then ad /. best else 1.0 in
          let ok = ratio <= 1.10 +. 1e-9 in
          if not ok then all_ok := false;
          let migrations =
            Obs.Metrics.get
              (Obs.Ctx.metrics adaptive_run.Workload.Driver.obs)
              Obs.Metrics.Adaptive_migrations
          in
          [
            Printf.sprintf "%.0f" ad;
            mix adaptive_run;
            string_of_int migrations;
            Printf.sprintf "%.2fx" ratio;
            (if ok then "yes" else "NO");
          ]
        end
      in
      Util.Ascii_table.add_row table
        ([ Printf.sprintf "%.2f" p; Printf.sprintf "%g" f; Printf.sprintf "%g" skew ]
        @ List.map (Printf.sprintf "%.0f") fixed_ms
        @ adaptive_cells @ [ winner ]))
    [
      (0.1, 0.001, 0.0);
      (0.1, 0.01, 0.0);
      (0.1, 0.05, 0.0);
      (0.5, 0.001, 0.0);
      (0.5, 0.01, 0.0);
      (0.5, 0.05, 0.0);
      (0.9, 0.001, 0.0);
      (0.9, 0.01, 0.0);
      (0.97, 0.05, 0.0);
      (0.5, 0.01, 0.05);
      (0.5, 0.05, 0.05);
      (0.8, 0.01, 0.05);
      (0.8, 0.05, 0.05);
    ];
  Util.Ascii_table.print table;
  if with_adaptive then
    Printf.printf "\nadaptive within 10%% of best fixed at every grid point: %s\n"
      (if !all_ok then "yes" else "NO");
  if
    List.mem Strategy.Update_cache_hoivm fixed_strategies
    && List.length fixed_strategies > 1
  then
    Printf.printf "HOIVM wins at %d skewed grid point%s: %s\n" !hoivm_wins_skewed
      (if !hoivm_wins_skewed = 1 then "" else "s")
      (if !hoivm_wins_skewed > 0 then "yes" else "NO");
  print_newline ();
  ctx

let print_ext_evict () =
  print_endline "== ext-evict: strategy cost under shared result-cache budget pressure";
  print_endline
    "extension: CI/AVM stored results share one page budget; evictions drop entries\n\
     (charged one directory write) and evicted entries recompute on access.  The\n\
     peak never exceeds the budget, and budget 0 degrades both to AR pricing.\n";
  let params = Workload.Driver.default_sim_params in
  let ctx = Obs.Ctx.create () in
  let run ?cache_budget ?cache_policy strategy =
    let r =
      Workload.Driver.run_strategy ~seed:!the_seed ~check_consistency:false ?cache_budget
        ?cache_policy ~model:Model.Model1 ~params strategy
    in
    Obs.Ctx.merge_into ~into:ctx r.Workload.Driver.obs;
    r
  in
  let ar = run Strategy.Always_recompute in
  let table =
    Util.Ascii_table.create
      ~header:
        [ "strategy"; "policy"; "budget"; "ms/query"; "peak"; "evictions"; "fallbacks"; "ok" ]
      ()
  in
  let all_ok = ref true in
  List.iter
    (fun strategy ->
      (* the unbudgeted footprint calibrates the pressure points *)
      let full = run ~cache_budget:max_int strategy in
      let w = full.Workload.Driver.cache_peak_pages in
      List.iter
        (fun policy ->
          List.iter
            (fun budget ->
              let r = run ~cache_budget:budget ~cache_policy:policy strategy in
              let m = Obs.Ctx.metrics r.Workload.Driver.obs in
              let within = r.Workload.Driver.cache_peak_pages <= budget in
              let degraded_to_ar =
                budget > 0
                || r.Workload.Driver.measured_ms_per_query
                   = ar.Workload.Driver.measured_ms_per_query
              in
              let ok = within && degraded_to_ar in
              if not ok then all_ok := false;
              Util.Ascii_table.add_row table
                [
                  Strategy.short_name strategy;
                  Cache.Policy.name policy;
                  string_of_int budget;
                  Printf.sprintf "%.1f" r.Workload.Driver.measured_ms_per_query;
                  string_of_int r.Workload.Driver.cache_peak_pages;
                  string_of_int (Obs.Metrics.get m Obs.Metrics.Cache_evictions);
                  string_of_int (Obs.Metrics.get m Obs.Metrics.Cache_fallback_recomputes);
                  (if ok then "yes" else "NO");
                ])
            [ w; max 1 (w / 2); max 1 (w / 4); 0 ])
        Cache.Policy.all)
    [ Strategy.Cache_invalidate; Strategy.Update_cache_avm ];
  Util.Ascii_table.print table;
  Printf.printf
    "\npeak <= budget everywhere, and budget 0 matches Always Recompute: %s\n\n"
    (if !all_ok then "yes" else "NO");
  ctx

let print_ext_contention () =
  print_endline
    "== ext-contention: N writers x M readers over one shared database (model 1)";
  print_endline
    "extension: the measurement the paper never made.  8 sessions interleave under a\n\
     seeded scheduler over ONE database: writer sessions scan-then-rewrite R1 sel\n\
     values (S locks upgraded to X points, breaking reader i-locks), reader sessions\n\
     access procedures under the strategy.  Strict 2PL blocks, upgrade stand-offs\n\
     deadlock, the youngest victim aborts via WAL rollback and restarts.  Sweeping\n\
     the writer share maps the writer-vs-cached-reader frontier: blocked-time\n\
     p50/p99, deadlock/victim counts, i-locks broken per committed writer txn.\n";
  let params =
    {
      Workload.Driver.default_sim_params with
      Params.n = 2000.0;
      n1 = 4.0;
      n2 = 4.0;
      q = 10.0;
      k = 10.0;
    }
  in
  let manager_kind = Proc.Manager.kind_of_strategy in
  let n_sessions = 8 and txns_per_session = 6 in
  let writer_counts = [ 1; 2; 4 ] in
  let cells =
    List.concat_map (fun s -> List.map (fun w -> (s, w)) writer_counts) Strategy.all
  in
  let run_cell cell_ix (strategy, writers) =
    let seed = Workload.Parallel.split_seed ~seed:!the_seed ~index:cell_ix in
    let ctx = Obs.Ctx.create () in
    let db = Workload.Database.build ~seed ~ctx ~model:Model.Model1 params in
    let record_bytes = int_of_float (Float.round params.Params.s) in
    let mgr =
      Proc.Manager.create (manager_kind strategy) ~io:db.Workload.Database.io ~record_bytes ()
    in
    let defs = Workload.Database.all_defs db in
    let pids = List.map (Proc.Manager.register mgr) defs in
    let tm =
      Txn.Manager.create ~record_bytes ~cost:db.Workload.Database.cost
        ~io:db.Workload.Database.io
        ~notify_delta:(fun ~rel ~inserted ~deleted ->
          Proc.Manager.on_delta mgr ~rel ~inserted ~deleted)
        ~notify_update:(fun ~rel ~changes -> Proc.Manager.on_update mgr ~rel ~changes)
        ()
    in
    (* Each procedure pins one i-lock per source region, owner = proc id.
       Writers' X grants break them; a commit re-pins the owner's set, as
       the next access to the invalidated procedure would. *)
    let ilock_regions =
      List.map2
        (fun pid def ->
          ( pid,
            List.map
              (fun (s : Query.View_def.source) ->
                Proc.Lock_manager.region_of_restriction
                  ~rel:(Relation.name s.Query.View_def.rel)
                  s.Query.View_def.restriction)
              (Query.View_def.sources def) ))
        pids defs
    in
    let pin_ilocks (pid, regions) =
      List.iteri (fun i r -> Txn.Manager.set_ilock tm ~owner:pid ~tag:i r) regions
    in
    List.iter pin_ilocks ilock_regions;
    let sprng = Util.Prng.create (Workload.Parallel.split_seed ~seed ~index:1) in
    let sel_attr = Schema.index_of (Relation.schema db.Workload.Database.r1) "sel" in
    let r1 = db.Workload.Database.r1 in
    (* Writer transaction: scan the interval spanning its rewrites under
       S, then upgrade to an X point per rewrite — the upgrade stand-off
       two writers can reach is exactly the deadlock the detector must
       break.  Locks are fixed at spec-build time so the interleaving is
       a pure function of the seed. *)
    let writer_txn () =
      let upds = Workload.Database.random_update db sprng in
      let sel_of tuple = Tuple.get tuple sel_attr in
      let points =
        List.concat_map
          (fun (rid, newt) -> [ sel_of (Relation.get r1 rid); sel_of newt ])
          upds
      in
      let lo = List.fold_left min (List.hd points) points in
      let hi = List.fold_left max (List.hd points) points in
      let scan =
        {
          Txn.Sim.locks =
            [
              ( `S,
                Proc.Lock_manager.Interval
                  {
                    rel = Relation.name r1;
                    attr = sel_attr;
                    lo = Index.Btree.Inclusive lo;
                    hi = Index.Btree.Inclusive hi;
                  } );
            ];
          exec = (fun _ _ -> ());
        }
      in
      scan
      :: List.map
           (fun (rid, newt) ->
             {
               Txn.Sim.locks =
                 [
                   ( `X,
                     Proc.Lock_manager.point ~rel:(Relation.name r1) ~attr:sel_attr
                       (sel_of newt) );
                 ];
               exec =
                 (fun tm id ->
                   let before = Relation.get r1 rid in
                   ignore (Relation.update r1 rid newt);
                   Txn.Manager.log_update tm id ~rel:r1 ~rid ~before ~after:newt;
                   Proc.Manager.on_update mgr ~rel:r1 ~changes:[ (before, newt) ]);
             })
           upds
    in
    (* Reader transaction: take every source's S lock across separate
       steps (holding the base lock while waiting on the next is what
       lets readers sit inside writer stand-offs), then access. *)
    let pid_arr = Array.of_list pids in
    let reader_txn () =
      let pid = Util.Prng.pick sprng pid_arr in
      let regions = List.assoc pid ilock_regions in
      List.map (fun r -> { Txn.Sim.locks = [ (`S, r) ]; exec = (fun _ _ -> ()) }) regions
      @ [ { Txn.Sim.locks = []; exec = (fun _ _ -> ignore (Proc.Manager.access mgr pid)) } ]
    in
    let sessions =
      List.init n_sessions (fun s ->
          List.init txns_per_session (fun _ ->
              if s < writers then writer_txn () else reader_txn ()))
    in
    let on_commit ~session:_ ~txn:_ ~broken =
      List.sort_uniq compare
        (List.map (fun (b : Proc.Lock_manager.broken) -> b.Proc.Lock_manager.owner) broken)
      |> List.iter (fun owner ->
             Txn.Manager.drop_ilocks tm ~owner;
             pin_ilocks (owner, List.assoc owner ilock_regions))
    in
    let stats =
      Txn.Sim.run ~on_commit ~seed:(Workload.Parallel.split_seed ~seed ~index:2) tm sessions
    in
    let total_ms =
      Storage.Cost.total_ms Storage.Cost.default_charges db.Workload.Database.cost
    in
    (ctx, stats, Txn.Manager.live_count tm, total_ms)
  in
  let results =
    Workload.Parallel.map ~jobs:!the_jobs
      (fun (i, c) -> run_cell i c)
      (List.mapi (fun i c -> (i, c)) cells)
  in
  let merged = Obs.Ctx.create () in
  let table =
    Util.Ascii_table.create
      ~header:
        [
          "strategy"; "writers"; "committed"; "deadlocks"; "victims"; "restarts";
          "blk p50"; "blk p99"; "ilk/wtxn"; "ms/txn"; "ok";
        ]
      ()
  in
  let all_ok = ref true in
  List.iter2
    (fun (strategy, writers) (ctx, (stats : Txn.Sim.stats), live, total_ms) ->
      Obs.Ctx.merge_into ~into:merged ctx;
      let m = Obs.Ctx.metrics ctx in
      let cycles = Obs.Metrics.get m Obs.Metrics.Deadlock_cycles in
      let victims = Obs.Metrics.get m Obs.Metrics.Deadlock_victims in
      let blocked = Obs.Histogram.named (Obs.Ctx.histograms ctx) "txn.blocked_ms" in
      let q p =
        if Obs.Histogram.count blocked = 0 then "-"
        else Printf.sprintf "%.1f" (Obs.Histogram.quantile blocked p)
      in
      let committed_writers = writers * txns_per_session in
      (* every transaction must eventually commit (victims restart), and
         the scheduler's victim count must agree with the counter *)
      let ok =
        stats.Txn.Sim.committed = n_sessions * txns_per_session
        && stats.Txn.Sim.victim_aborts = victims
        && live = 0
      in
      if not ok then all_ok := false;
      Util.Ascii_table.add_row table
        [
          Strategy.short_name strategy;
          string_of_int writers;
          string_of_int stats.Txn.Sim.committed;
          string_of_int cycles;
          string_of_int victims;
          string_of_int stats.Txn.Sim.restarts;
          q 0.5;
          q 0.99;
          Printf.sprintf "%.1f" (float_of_int stats.Txn.Sim.broken_ilocks /. float_of_int committed_writers);
          Printf.sprintf "%.1f" (total_ms /. float_of_int stats.Txn.Sim.committed);
          (if ok then "yes" else "NO");
        ])
    cells results;
  Util.Ascii_table.print table;
  Printf.printf "\nevery transaction committed and victim counts reconcile: %s\n\n"
    (if !all_ok then "yes" else "NO");
  merged

let print_ext_failover () =
  print_endline
    "== ext-failover: request latency through a node kill and replica promotion (3-node cluster)";
  print_endline
    "extension: the cluster's headline scenario.  A seeded loadgen-style statement mix\n\
     (30% writes, point reads, a cross-shard join every 25th op) runs against a 3-node\n\
     range-partitioned cluster with WAL-shipping replicas; the fault injector kills\n\
     node 1's primary mid-run, the coordinator promotes its replica (replaying the\n\
     shipped log) and retries the in-flight statement.  Latency is the per-statement\n\
     simulated cost the server-side histogram records — p50/p99 before, during (the\n\
     20-op window from the crash), and after; every statement must still succeed and\n\
     the merged cluster counters must reconcile appends with acks.\n";
  let nodes = 3 and n_ops = 300 and before_ops = 150 and window = 20 in
  let setup =
    [ "create R (k = int, v = int)"; "create S (k = int, w = int)" ]
    @ List.init 45 (fun i ->
          Printf.sprintf "append to R (k = %d, v = %d)" (i * 21001 mod 1_000_000) i)
    @ List.init 15 (fun i ->
          Printf.sprintf "append to S (k = %d, w = %d)" (i * 42002 mod 1_000_000) (100 + i))
    @ [ "define proc PJ as retrieve (R.v, S.w) where R.k = S.k" ]
  in
  let injector = Fault.Injector.create ~seed:!the_seed () in
  Fault.Injector.schedule_node_kills injector
    [ { Fault.Injector.node = 1; at_op = List.length setup + before_ops + 1 } ];
  let local = Net.Coordinator.create_local ~injector ~nodes () in
  let c = Net.Coordinator.coordinator local in
  List.iter (fun line -> assert (Net.Coordinator.exec c line).Net.Coordinator.ok) setup;
  let prng = Util.Prng.create !the_seed in
  let acked_appends = ref 60 (* setup *) and all_ok = ref true in
  let latencies =
    List.init n_ops (fun i ->
        let line =
          if (i + 1) mod 25 = 0 then "exec PJ"
          else if Util.Prng.int prng 10 < 3 then begin
            incr acked_appends;
            Printf.sprintf "append to R (k = %d, v = %d)" (Util.Prng.int prng 1_000_000)
              (Util.Prng.int prng 1000)
          end
          else
            Printf.sprintf "retrieve (R.v) where R.k = %d" (Util.Prng.int prng 1_000_000)
        in
        let t0 = Net.Coordinator.sim_ms c in
        let r = Net.Coordinator.exec c line in
        if not r.Net.Coordinator.ok then all_ok := false;
        Net.Coordinator.sim_ms c -. t0)
  in
  let phase name ops =
    [
      name;
      string_of_int (List.length ops);
      Printf.sprintf "%.1f" (Util.Stats.mean ops);
      Printf.sprintf "%.1f" (Util.Stats.percentile 0.5 ops);
      Printf.sprintf "%.1f" (Util.Stats.percentile 0.99 ops);
      Printf.sprintf "%.1f" (List.fold_left max 0.0 ops);
    ]
  in
  let take n xs = List.filteri (fun i _ -> i < n) xs in
  let drop n xs = List.filteri (fun i _ -> i >= n) xs in
  let table =
    Util.Ascii_table.create ~header:[ "phase"; "ops"; "mean ms"; "p50"; "p99"; "max" ] ()
  in
  Util.Ascii_table.add_row table (phase "before kill" (take before_ops latencies));
  Util.Ascii_table.add_row table
    (phase "during (crash+promote)" (take window (drop before_ops latencies)));
  Util.Ascii_table.add_row table (phase "after" (drop (before_ops + window) latencies));
  Util.Ascii_table.print table;
  let merged = Net.Coordinator.snapshot c in
  let g k = Obs.Metrics.get (Obs.Ctx.metrics merged) k in
  let reconciled = g Obs.Metrics.Heap_appends = !acked_appends in
  if not reconciled then all_ok := false;
  Printf.printf
    "\nkills %d  failovers %d  retries %d  records shipped %d  statements replayed %d\n"
    (g Obs.Metrics.Fault_node_kills)
    (g Obs.Metrics.Cluster_failovers)
    (g Obs.Metrics.Cluster_retries)
    (g Obs.Metrics.Repl_records_shipped)
    (g Obs.Metrics.Repl_statements_replayed);
  Printf.printf
    "every statement succeeded and cluster heap appends (%d) match acked appends (%d): %s\n\n"
    (g Obs.Metrics.Heap_appends) !acked_appends
    (if !all_ok && reconciled then "yes" else "NO");
  merged

let print_ext_2pc () =
  print_endline
    "== ext-2pc: distributed commit latency and abort rate vs cross-shard fraction (3-node cluster)";
  print_endline
    "extension: two clients run transactions concurrently (statements interleaved in\n\
     lockstep) against a 3-node cluster; each transaction is begin + 3 appends +\n\
     commit.  A single-shard transaction keeps its keys inside one partition, a\n\
     cross-shard one spreads them over the key domain, so the cross-shard fraction\n\
     controls how many participants two-phase commit must coordinate — and how often\n\
     the two clients' whole-relation append locks collide across nodes (deadlock\n\
     victims).  Commit latency is the simulated-clock delta around the commit\n\
     statement: one prepare round-trip per participant plus the decision-log append\n\
     and commit fan-out.\n";
  let nodes = 3 and rounds = 40 in
  let slice = 1_000_000 / nodes in
  let fractions = [ 0.0; 0.25; 0.5; 1.0 ] in
  let table =
    Util.Ascii_table.create
      ~header:
        [
          "cross-shard"; "txns"; "committed"; "aborted"; "abort %"; "parts/txn";
          "mean commit ms"; "p99 commit ms";
        ]
      ()
  in
  let last = ref None in
  List.iter
    (fun frac ->
      let local = Net.Coordinator.create_local ~nodes () in
      let c = Net.Coordinator.coordinator local in
      assert (Net.Coordinator.exec c "create R (k = int, v = int)").Net.Coordinator.ok;
      let prng = Util.Prng.create !the_seed in
      let commit_ms = ref [] and committed = ref 0 and aborted = ref 0 in
      (* commit cost lands on the participants (prepare handling, local
         commit, WAL), so the commit latency sample is the delta of the
         whole cluster's simulated clock, not just the coordinator's *)
      let cluster_ms () =
        let acc = ref (Net.Coordinator.sim_ms c) in
        for i = 0 to nodes - 1 do
          acc :=
            !acc
            +. Lang.Interp.simulated_ms
                 (Net.Node.session (Net.Coordinator.local_node local i))
        done;
        !acc
      in
      let mk_script () =
        let cross = Util.Prng.float prng < frac in
        let home = Util.Prng.int prng nodes in
        let body =
          List.init 3 (fun _ ->
              let k =
                if cross then Util.Prng.int prng 1_000_000
                else (home * slice) + Util.Prng.int prng slice
              in
              Printf.sprintf "append to R (k = %d, v = %d)" k
                (Util.Prng.int prng 1000))
        in
        ("begin" :: body) @ [ "commit" ]
      in
      (* one transaction per client per round, statements interleaved in
         lockstep; a parked statement is retried after the peer moves *)
      for _ = 1 to rounds do
        let scripts = [| mk_script (); mk_script () |] in
        let parked = [| None; None |] and finished = [| false; false |] in
        let step cl =
          if not finished.(cl) then
            let line =
              match parked.(cl) with
              | Some l -> l
              | None -> (
                match scripts.(cl) with
                | l :: rest ->
                  scripts.(cl) <- rest;
                  l
                | [] -> assert false)
            in
            let t0 = if line = "commit" then cluster_ms () else 0.0 in
            match Net.Coordinator.exec_client c ~client:(cl + 1) line with
            | `Park _ -> parked.(cl) <- Some line
            | `Done r ->
              parked.(cl) <- None;
              if r.Net.Coordinator.aborted then begin
                incr aborted;
                finished.(cl) <- true;
                scripts.(cl) <- []
              end
              else if line = "commit" then begin
                commit_ms := (cluster_ms () -. t0) :: !commit_ms;
                incr committed;
                finished.(cl) <- true
              end
        in
        let guard = ref 0 in
        while not (finished.(0) && finished.(1)) do
          incr guard;
          if !guard > 1000 then failwith "ext-2pc: interleaving livelocked";
          step 0;
          step 1
        done
      done;
      let m = Obs.Ctx.metrics (Net.Coordinator.ctx c) in
      let g k = Obs.Metrics.get m k in
      let txns = (2 * rounds) in
      Util.Ascii_table.add_row table
        [
          Printf.sprintf "%.2f" frac;
          string_of_int txns;
          string_of_int !committed;
          string_of_int !aborted;
          Printf.sprintf "%.1f" (100.0 *. float_of_int !aborted /. float_of_int txns);
          Printf.sprintf "%.2f"
            (float_of_int (g Obs.Metrics.Txn2pc_participants)
            /. float_of_int (max 1 (g Obs.Metrics.Txn2pc_begins)));
          Printf.sprintf "%.1f" (Util.Stats.mean !commit_ms);
          Printf.sprintf "%.1f" (Util.Stats.percentile 0.99 !commit_ms);
        ];
      last := Some (Net.Coordinator.snapshot c))
    fractions;
  Util.Ascii_table.print table;
  (match !last with
  | Some merged ->
    let g k = Obs.Metrics.get (Obs.Ctx.metrics merged) k in
    Printf.printf
      "\nfull-cross run: prepares %d  commit decisions %d  aborts %d  deadlock cycles %d\n\n"
      (g Obs.Metrics.Txn2pc_prepares)
      (g Obs.Metrics.Txn2pc_commits)
      (g Obs.Metrics.Txn2pc_aborts)
      (g Obs.Metrics.Deadlock_cycles)
  | None -> ());
  match !last with Some s -> s | None -> assert false

(* ------------------------------------------------------------ Bechamel *)

let bechamel_tests () =
  let open Bechamel in
  let figure_tests =
    List.map
      (fun fig ->
        Test.make ~name:fig.Figures.id
          (Staged.stage (fun () -> ignore (fig.Figures.output ()))))
      Figures.all
  in
  let sim_params =
    {
      Workload.Driver.default_sim_params with
      Params.n = 4000.0;
      n1 = 5.0;
      n2 = 5.0;
      q = 10.0;
      k = 10.0;
    }
  in
  (* Micro-benchmarks: wall-clock of the core data structures themselves
     (the simulated-cost layer is bypassed; this measures the library). *)
  let micro_tests =
    let cost = Storage.Cost.create () in
    Storage.Cost.disable cost;
    let io = Storage.Io.direct cost ~page_bytes:4000 in
    let btree = Index.Btree.create ~io ~entry_bytes:20 ~compare:Int.compare () in
    for i = 0 to 9_999 do
      Index.Btree.insert btree ((i * 7919) mod 10_000) i
    done;
    let hash =
      Index.Hash_index.create ~io ~entry_bytes:20 ~expected_entries:10_000 ~equal:Int.equal ()
    in
    for i = 0 to 9_999 do
      Index.Hash_index.insert hash i i
    done;
    let module Ii = Util.Interval_index.Make (Int) in
    let stabber = Ii.create () in
    for i = 0 to 999 do
      Ii.add stabber ~lo:(Ii.Incl (i * 10)) ~hi:(Ii.Excl ((i * 10) + 50)) i
    done;
    ignore (Ii.stab stabber 0);
    (* force the build outside the timed region *)
    let counter = ref 0 in
    [
      Test.make ~name:"micro-btree-search"
        (Staged.stage (fun () ->
             incr counter;
             ignore (Index.Btree.search btree (!counter * 37 mod 10_000))));
      Test.make ~name:"micro-btree-insert"
        (Staged.stage (fun () ->
             incr counter;
             Index.Btree.insert btree (!counter mod 10_000) !counter));
      Test.make ~name:"micro-hash-probe"
        (Staged.stage (fun () ->
             incr counter;
             ignore (Index.Hash_index.search hash (!counter * 31 mod 10_000))));
      Test.make ~name:"micro-interval-stab"
        (Staged.stage (fun () ->
             incr counter;
             ignore (Ii.stab stabber (!counter * 13 mod 10_000))));
      Test.make ~name:"micro-yao-paper"
        (Staged.stage (fun () ->
             incr counter;
             ignore
               (Util.Yao.paper ~n:10_000.0 ~m:250.0 ~k:(float_of_int (!counter mod 1000)))));
      (* manager lookup on a populated procedure table (the hot path of
         every access/on_delta dispatch; used to be O(procedures)) *)
      Test.make ~name:"micro-manager-lookup"
        (let ctx = Obs.Ctx.create () in
         let db =
           Workload.Database.build ~seed:42 ~ctx ~model:Model.Model1
             {
               Workload.Driver.default_sim_params with
               Params.n = 2000.0;
               n1 = 60.0;
               n2 = 0.0;
             }
         in
         let mgr =
           Proc.Manager.create Proc.Manager.Always_recompute
             ~io:db.Workload.Database.io ~record_bytes:100 ()
         in
         let ids =
           Array.of_list
             (List.map
                (fun def -> Proc.Manager.register mgr def)
                (Workload.Database.all_defs db))
         in
         Staged.stage (fun () ->
             incr counter;
             ignore (Proc.Manager.def_of mgr ids.(!counter mod Array.length ids))));
      (* wire-protocol encode + strict decode of one request frame *)
      Test.make ~name:"micro-net-protocol"
        (let dec = Net.Protocol.Decoder.create () in
         Staged.stage (fun () ->
             incr counter;
             let frame =
               Net.Protocol.request_to_string ~id:!counter
                 (Net.Protocol.Exec_line "retrieve (EMP.all) where EMP.age < 32")
             in
             Net.Protocol.Decoder.feed_string dec frame;
             match Net.Protocol.Decoder.next_request dec with
             | Net.Protocol.Msg _ -> ()
             | Net.Protocol.Awaiting | Net.Protocol.Corrupt _ -> assert false));
    ]
  in
  (* Executor engines head to head: the same prepared plan run by the
     tuple-at-a-time interpreter and the compiled batch pipeline.  Cost
     accounting is disabled (wall-clock of the engine itself). *)
  let exec_tests =
    let cost = Storage.Cost.create () in
    Storage.Cost.disable cost;
    let io = Storage.Io.direct cost ~page_bytes:4000 in
    let r_schema = Schema.create [ ("k", Value.TInt); ("v", Value.TInt) ] in
    let s_schema = Schema.create [ ("b", Value.TInt); ("w", Value.TInt) ] in
    let r = Relation.create ~io ~name:"R" ~schema:r_schema ~tuple_bytes:100 in
    Relation.load r
      (List.init 20_000 (fun i -> Tuple.create [ Value.Int i; Value.Int (i mod 500) ]));
    let s = Relation.create ~io ~name:"S" ~schema:s_schema ~tuple_bytes:100 in
    Relation.load s
      (List.init 500 (fun b -> Tuple.create [ Value.Int b; Value.Int (b * 10) ]));
    Relation.add_hash_index ~primary:true s ~attr:"b" ~entry_bytes:20
      ~expected_entries:500;
    let scan_plan =
      Query.Executor.prepare
        (Query.Planner.compile
           (Query.View_def.select ~name:"scan" ~rel:r
              ~restriction:
                [ Predicate.term ~attr:1 ~op:Predicate.Lt ~value:(Value.Int 250) ]))
    in
    let join_plan =
      Query.Executor.prepare
        (Query.Planner.compile
           (Query.View_def.join
              (Query.View_def.select ~name:"join" ~rel:r
                 ~restriction:
                   [ Predicate.term ~attr:0 ~op:Predicate.Lt ~value:(Value.Int 4000) ])
              ~rel:s ~restriction:Predicate.always_true ~left:"R.v" ~op:Predicate.Eq
              ~right:"b"))
    in
    let engine_test name engine prepared =
      Test.make ~name
        (Staged.stage (fun () ->
             Query.Executor.set_engine engine;
             ignore (Query.Executor.run_prepared prepared)))
    in
    (* Statement-replay throughput: the same retrieve line through a
       session with and without the statement cache (parse + bind + plan
       skipped on every repeat when it is on). *)
    let stmt_test name plan_cache =
      let interp = Lang.Interp.create ~ctx:(Obs.Ctx.create ()) ~plan_cache () in
      List.iter
        (fun line ->
          match Lang.Interp.exec_line interp line with
          | Ok _ -> ()
          | Error msg -> failwith msg)
        ("create emp (name = string, age = int, dept = int)"
        :: List.init 200 (fun i ->
               Printf.sprintf "append to emp (name = \"e%d\", age = %d, dept = %d)" i
                 (20 + (i mod 40))
                 (i mod 8)));
      Test.make ~name
        (Staged.stage (fun () ->
             match
               Lang.Interp.exec_line interp
                 "retrieve (emp.name, emp.age) where emp.dept = 3 and emp.age < 32"
             with
             | Ok _ -> ()
             | Error msg -> failwith msg))
    in
    [
      engine_test "micro-exec-scan-interp" Query.Executor.Tuple_interp scan_plan;
      engine_test "micro-exec-scan-compiled" Query.Executor.Batch_compiled scan_plan;
      engine_test "micro-exec-join-interp" Query.Executor.Tuple_interp join_plan;
      engine_test "micro-exec-join-compiled" Query.Executor.Batch_compiled join_plan;
      stmt_test "micro-stmt-cache-on" true;
      stmt_test "micro-stmt-cache-off" false;
    ]
  in
  let micro_tests = micro_tests @ exec_tests in
  let sim_tests =
    [
      Test.make ~name:"sim-model1"
        (Staged.stage (fun () ->
             ignore
               (Workload.Driver.run_strategy ~check_consistency:false ~model:Model.Model1
                  ~params:sim_params Strategy.Update_cache_avm)));
      Test.make ~name:"sim-model2"
        (Staged.stage (fun () ->
             ignore
               (Workload.Driver.run_strategy ~check_consistency:false ~model:Model.Model2
                  ~params:sim_params Strategy.Update_cache_rvm)));
    ]
  in
  figure_tests @ sim_tests @ micro_tests

let run_bechamel ~quota ids =
  let open Bechamel in
  let tests =
    match ids with
    | [] -> bechamel_tests ()
    | ids -> List.filter (fun t -> List.mem (Test.name t) ids) (bechamel_tests ())
  in
  if tests <> [] then begin
    print_endline "== bechamel: wall-clock per experiment regeneration";
    let cfg =
      Benchmark.cfg ~limit:2000 ~quota:(Time.second quota) ~kde:None ~stabilize:false ()
    in
    let grouped = Test.make_grouped ~name:"dbproc" tests in
    let raw = Benchmark.all cfg Toolkit.Instance.[ monotonic_clock ] grouped in
    let ols =
      Analyze.all
        (Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| "run" |])
        Toolkit.Instance.monotonic_clock raw
    in
    let table = Util.Ascii_table.create ~header:[ "experiment"; "time/run"; "r^2" ] () in
    let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) ols [] in
    List.iter
      (fun (name, ols) ->
        let estimate =
          match Analyze.OLS.estimates ols with Some (e :: _) -> e | _ -> Float.nan
        in
        let pretty =
          if Float.is_nan estimate then "-"
          else if estimate > 1e9 then Printf.sprintf "%.2f s" (estimate /. 1e9)
          else if estimate > 1e6 then Printf.sprintf "%.2f ms" (estimate /. 1e6)
          else if estimate > 1e3 then Printf.sprintf "%.2f us" (estimate /. 1e3)
          else Printf.sprintf "%.0f ns" estimate
        in
        let r2 =
          match Analyze.OLS.r_square ols with
          | Some r -> Printf.sprintf "%.3f" r
          | None -> "-"
        in
        Util.Ascii_table.add_row table [ name; pretty; r2 ])
      (List.sort compare rows);
    Util.Ascii_table.print table;
    print_newline ()
  end

(* -------------------------------------------------------------- CSV out *)

let write_csv dir (fig : Figures.t) =
  match fig.Figures.output () with
  | Figures.Series { x_label; columns; rows; _ } ->
    let path = Filename.concat dir (fig.Figures.id ^ ".csv") in
    Out_channel.with_open_text path (fun oc ->
        Printf.fprintf oc "%s,%s\n" x_label (String.concat "," columns);
        List.iter
          (fun (x, ys) ->
            Printf.fprintf oc "%g,%s\n" x (String.concat "," (List.map (Printf.sprintf "%g") ys)))
          rows);
    Printf.printf "wrote %s\n" path
  | Figures.Table { header; rows } ->
    let path = Filename.concat dir (fig.Figures.id ^ ".csv") in
    Out_channel.with_open_text path (fun oc ->
        Printf.fprintf oc "%s\n" (String.concat "," header);
        List.iter (fun row -> Printf.fprintf oc "%s\n" (String.concat "," row)) rows);
    Printf.printf "wrote %s\n" path
  | Figures.Region _ -> () (* region maps have no tabular form *)

(* ----------------------------------------------------------------- Main *)

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let rec parse quota bechamel sim csv ids = function
    | [] -> (quota, bechamel, sim, csv, List.rev ids)
    | "--no-bechamel" :: rest -> parse quota false sim csv ids rest
    | "--no-sim" :: rest -> parse quota bechamel false csv ids rest
    | "--quota" :: v :: rest -> parse (float_of_string v) bechamel sim csv ids rest
    | "--csv" :: dir :: rest -> parse quota bechamel sim (Some dir) ids rest
    | "--seed" :: v :: rest ->
      (match int_of_string_opt v with
      | Some s -> the_seed := s
      | None ->
        Printf.eprintf "bench: --seed expects an integer, got %S\n" v;
        exit 2);
      parse quota bechamel sim csv ids rest
    | "--jobs" :: v :: rest ->
      (match int_of_string_opt v with
      | Some j when j >= 1 -> the_jobs := j
      | _ ->
        Printf.eprintf "bench: --jobs expects a positive integer, got %S\n" v;
        exit 2);
      parse quota bechamel sim csv ids rest
    | "--json" :: path :: rest ->
      json_out := Some path;
      parse quota bechamel sim csv ids rest
    | "--strategies" :: v :: rest ->
      let names = String.split_on_char ',' v |> List.map String.trim in
      let parsed =
        List.map
          (fun name ->
            match Strategy.of_string name with
            | Some s -> s
            | None ->
              Printf.eprintf
                "bench: --strategies: unknown strategy %S (ar|ci|avm|rvm|hoivm)\n" name;
              exit 2)
          names
      in
      if parsed = [] then begin
        Printf.eprintf "bench: --strategies expects a non-empty comma list\n";
        exit 2
      end;
      the_strategies := Some parsed;
      parse quota bechamel sim csv ids rest
    | [ (("--seed" | "--jobs" | "--json" | "--strategies") as flag) ] ->
      Printf.eprintf "bench: %s requires a value\n" flag;
      exit 2
    | id :: rest -> parse quota bechamel sim csv (id :: ids) rest
  in
  let quota, bechamel, sim, csv, ids = parse 0.3 true true None [] args in
  (match csv with
  | Some dir ->
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    List.iter (write_csv dir)
      (match ids with
      | [] -> Figures.all
      | ids -> List.filter (fun f -> List.mem f.Figures.id ids) Figures.all)
  | None -> ());
  let selected =
    match ids with
    | [] -> Figures.all
    | ids -> List.filter (fun f -> List.mem f.Figures.id ids) Figures.all
  in
  List.iter
    (fun fig ->
      record fig.Figures.id (fun () ->
          print_string (Figures.render fig);
          print_newline ();
          print_newline ();
          (* analytic figures charge no engine context *)
          Obs.Ctx.create ()))
    selected;
  if ids = [] || List.mem "fig18" ids then print_crossovers ();
  if List.mem "fig3-network" ids || List.mem "fig16-network" ids then print_network_figures ();
  if sim then begin
    let base = Workload.Driver.default_sim_params in
    if ids = [] || List.mem "sim-model1" ids then
      record "sim-model1" (fun () -> print_sim_comparison ~model:Model.Model1 ());
    if ids = [] || List.mem "sim-model2" ids then
      record "sim-model2" (fun () -> print_sim_comparison ~model:Model.Model2 ());
    if ids = [] || List.mem "sim-fig4" ids then
      record "sim-fig4" (fun () ->
          print_sim_comparison ~label:"fig4" ~params:{ base with Params.c_inval = 60.0 }
            ~model:Model.Model1 ());
    if ids = [] || List.mem "sim-fig6" ids then
      record "sim-fig6" (fun () ->
          print_sim_comparison ~label:"fig6" ~params:{ base with Params.f = 0.01 }
            ~model:Model.Model1 ());
    if ids = [] || List.mem "sim-fig7" ids then
      record "sim-fig7" (fun () ->
          print_sim_comparison ~label:"fig7" ~params:{ base with Params.f = 0.0005 }
            ~model:Model.Model1 ());
    if ids = [] || List.mem "sim-fig9" ids then
      record "sim-fig9" (fun () ->
          print_sim_comparison ~label:"fig9" ~params:{ base with Params.z = 0.05 }
            ~model:Model.Model1 ());
    if ids = [] then begin
      print_ablation_buffer ();
      print_ablation_yao ();
      print_ablation_rete_shape ()
    end;
    if ids = [] || List.mem "ablation-obs" ids then print_ablation_obs_overhead ();
    if ids = [] || List.mem "ext-update-mix" ids then
      record "ext-update-mix" print_ext_update_mix;
    if ids = [] || List.mem "ext-wal" ids then record "ext-wal" print_ext_wal;
    if ids = [] || List.mem "ext-faults" ids then record "ext-faults" print_ext_faults;
    if ids = [] || List.mem "ext-aggregates" ids then
      record "ext-aggregates" print_ext_aggregates;
    if ids = [] || List.mem "ext-adaptive" ids then record "ext-adaptive" print_ext_adaptive;
    if ids = [] || List.mem "ext-winregion" ids then
      record "ext-winregion" print_ext_winregion;
    if ids = [] || List.mem "ext-evict" ids then record "ext-evict" print_ext_evict;
    if ids = [] || List.mem "ext-contention" ids then
      record "ext-contention" print_ext_contention;
    if ids = [] || List.mem "ext-failover" ids then
      record "ext-failover" print_ext_failover;
    if ids = [] || List.mem "ext-2pc" ids then record "ext-2pc" print_ext_2pc;
    if ids = [] || List.mem "ext-nway" ids then record "ext-nway" print_ext_nway;
    if ids = [] || List.mem "ext-sensitivity" ids then
      record "ext-sensitivity" print_ext_sensitivity;
    if ids = [] || List.mem "ext-latency" ids then record "ext-latency" print_ext_latency;
    if ids = [] || List.mem "ext-treat" ids then record "ext-treat" print_ext_treat
  end;
  (match !json_out with
  | Some path ->
    let doc =
      Obs.Export.Obj
        [
          ("schema_version", Obs.Export.Int 1);
          ("seed", Obs.Export.Int !the_seed);
          ("experiments", Obs.Export.Obj (List.rev !experiments));
        ]
    in
    Obs.Export.write_file path (Obs.Export.to_string doc);
    Printf.printf "wrote %s\n" path
  | None -> ());
  if bechamel then run_bechamel ~quota ids
